#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace rdcn {

Engine::Engine(const Instance& instance, DispatchPolicy& dispatcher,
               SchedulePolicy& scheduler, EngineOptions options)
    : instance_(&instance),
      dispatcher_(&dispatcher),
      scheduler_(&scheduler),
      options_(options) {
  const std::string error = instance.validate();
  if (!error.empty()) throw std::invalid_argument("invalid instance: " + error);
  if (options_.speedup_rounds < 1) throw std::invalid_argument("speedup_rounds must be >= 1");
  if (options_.endpoint_capacity < 1) {
    throw std::invalid_argument("endpoint_capacity must be >= 1");
  }
  if (options_.reconfig_delay < 0) throw std::invalid_argument("reconfig_delay must be >= 0");
  if (options_.reconfig_delay > 0 && options_.endpoint_capacity != 1) {
    throw std::invalid_argument("reconfig_delay requires endpoint_capacity == 1");
  }
  if (options_.record_trace &&
      (options_.speedup_rounds != 1 || options_.endpoint_capacity != 1 ||
       options_.reconfig_delay != 0 || options_.redispatch_queued)) {
    throw std::invalid_argument(
        "trace recording requires the analysis model (speedup 1, capacity 1, no "
        "reconfiguration delay, non-migratory)");
  }
  // Generous guard: demand-oblivious baselines (rotor) can take a full
  // matching cycle per chunk, far beyond the paper's reasonable-schedule
  // horizon, so the default only catches outright starvation.
  if (options_.max_steps == 0) {
    options_.max_steps =
        instance.horizon_bound() * 64 * (options_.reconfig_delay + 1) + 64;
  }
  const auto num_t = static_cast<std::size_t>(topology().num_transmitters());
  const auto num_r = static_cast<std::size_t>(topology().num_receivers());
  state_.resize(instance.num_packets());
  remaining_.assign(instance.num_packets(), 0);
  chunk_weight_.assign(instance.num_packets(), 0.0);
  pending_by_transmitter_.resize(num_t);
  pending_by_receiver_.resize(num_r);
  queue_pos_transmitter_.assign(instance.num_packets(), -1);
  queue_pos_receiver_.assign(instance.num_packets(), -1);
  transmitter_config_.resize(num_t);
  receiver_config_.resize(num_r);
  edge_used_round_.assign(static_cast<std::size_t>(topology().num_edges()), 0);
  load_t_round_.assign(num_t, 0);
  load_r_round_.assign(num_r, 0);
  load_t_.assign(num_t, 0);
  load_r_.assign(num_r, 0);
  owner_t_.assign(num_t, -1);
  owner_r_.assign(num_r, -1);
  result_.outcomes.resize(instance.num_packets());
}

bool Engine::work_left() const {
  return next_arrival_ < instance_->num_packets() || !candidates_.empty() ||
         !staged_.empty();
}

void Engine::apply_route(const Packet& packet, const RouteDecision& route) {
  auto& ps = state_[static_cast<std::size_t>(packet.id)];
  auto& outcome = result_.outcomes[static_cast<std::size_t>(packet.id)];
  ps.route = route;
  ps.dispatched = true;
  outcome.route = route;

  if (route.use_fixed) {
    const auto delay = topology().fixed_link_delay(packet.source, packet.destination);
    if (!delay) throw std::logic_error("dispatcher chose a non-existent fixed link");
    // Fixed links are uncapacitated: transmission starts at the decision
    // time (== arrival for the normal dispatch path; later when a queued
    // packet migrates to the fixed layer).
    const Time start = std::max(now_, packet.arrival);
    outcome.completion = start + *delay;
    outcome.weighted_latency =
        packet.weight * static_cast<double>(outcome.completion - packet.arrival);
    result_.fixed_cost += outcome.weighted_latency;
    result_.total_cost += outcome.weighted_latency;
    result_.makespan = std::max(result_.makespan, outcome.completion);
  } else {
    if (route.edge < 0 || route.edge >= topology().num_edges()) {
      throw std::logic_error("dispatcher chose an invalid edge");
    }
    const ReconfigEdge& edge = topology().edge(route.edge);
    if (topology().source_of(edge.transmitter) != packet.source ||
        topology().destination_of(edge.receiver) != packet.destination) {
      throw std::logic_error("dispatcher chose an edge outside E_p");
    }
    auto& remaining = remaining_[static_cast<std::size_t>(packet.id)];
    auto& chunk_weight = chunk_weight_[static_cast<std::size_t>(packet.id)];
    remaining = edge.delay;
    chunk_weight = packet.weight / static_cast<double>(edge.delay);

    auto& t_queue = pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)];
    auto& r_queue = pending_by_receiver_[static_cast<std::size_t>(edge.receiver)];
    queue_pos_transmitter_[static_cast<std::size_t>(packet.id)] =
        static_cast<std::int32_t>(t_queue.size());
    queue_pos_receiver_[static_cast<std::size_t>(packet.id)] =
        static_cast<std::int32_t>(r_queue.size());
    t_queue.push_back(packet.id);
    r_queue.push_back(packet.id);

    Candidate candidate;
    candidate.packet = packet.id;
    candidate.edge = route.edge;
    candidate.transmitter = edge.transmitter;
    candidate.receiver = edge.receiver;
    candidate.chunk_weight = chunk_weight;
    candidate.arrival = packet.arrival;
    candidate.remaining = remaining;
    staged_.push_back(candidate);

    outcome.chunk_transmit_steps.reserve(static_cast<std::size_t>(edge.delay));
  }
}

void Engine::merge_staged_candidates() {
  if (staged_.empty()) return;
  std::sort(staged_.begin(), staged_.end(), chunk_higher_priority);
  const auto middle = static_cast<std::ptrdiff_t>(candidates_.size());
  candidates_.insert(candidates_.end(), staged_.begin(), staged_.end());
  std::inplace_merge(candidates_.begin(), candidates_.begin() + middle, candidates_.end(),
                     chunk_higher_priority);
  staged_.clear();
}

void Engine::dispatch_arrivals() {
  const auto& packets = instance_->packets();
  while (next_arrival_ < packets.size() && packets[next_arrival_].arrival == now_) {
    const Packet& packet = packets[next_arrival_];
    apply_route(packet, dispatcher_->dispatch(*this, packet));
    ++next_arrival_;
  }
}

void Engine::erase_from_queue(std::vector<PacketIndex>& queue,
                              std::vector<std::int32_t>& position, PacketIndex packet) {
  const auto index =
      static_cast<std::size_t>(position[static_cast<std::size_t>(packet)]);
  position[static_cast<std::size_t>(packet)] = -1;
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
  for (std::size_t i = index; i < queue.size(); ++i) {
    position[static_cast<std::size_t>(queue[i])] = static_cast<std::int32_t>(i);
  }
}

void Engine::unlist_pending(PacketIndex packet) {
  const auto& ps = state_[static_cast<std::size_t>(packet)];
  const ReconfigEdge& edge = topology().edge(ps.route.edge);

  // The priority key (chunk_weight, arrival, id) is immutable, so the
  // candidate's slot is found by binary search instead of a full scan.
  Candidate key;
  key.packet = packet;
  key.chunk_weight = chunk_weight_[static_cast<std::size_t>(packet)];
  key.arrival = instance_->packets()[static_cast<std::size_t>(packet)].arrival;
  const auto it =
      std::lower_bound(candidates_.begin(), candidates_.end(), key, chunk_higher_priority);
  if (it == candidates_.end() || it->packet != packet) {
    throw std::logic_error("unlist_pending: packet is not pending");
  }
  candidates_.erase(it);

  erase_from_queue(pending_by_transmitter_[static_cast<std::size_t>(edge.transmitter)],
                   queue_pos_transmitter_, packet);
  erase_from_queue(pending_by_receiver_[static_cast<std::size_t>(edge.receiver)],
                   queue_pos_receiver_, packet);
}

void Engine::redispatch_queued_packets() {
  merge_staged_candidates();
  // Packets with every chunk still untransmitted may change route; they
  // are re-offered to the dispatcher in arrival order, each temporarily
  // removed so it does not see itself as queue pressure.
  std::vector<PacketIndex> queued;
  for (const Candidate& c : candidates_) {
    if (c.remaining == topology().edge(c.edge).delay) queued.push_back(c.packet);
  }
  std::sort(queued.begin(), queued.end(), [this](PacketIndex a, PacketIndex b) {
    return arrived_before(instance_->packets()[static_cast<std::size_t>(a)],
                          instance_->packets()[static_cast<std::size_t>(b)]);
  });
  for (PacketIndex p : queued) {
    const Packet& packet = instance_->packets()[static_cast<std::size_t>(p)];
    unlist_pending(p);
    remaining_[static_cast<std::size_t>(p)] = 0;
    apply_route(packet, dispatcher_->dispatch(*this, packet));
  }
  merge_staged_candidates();
}

std::size_t Engine::schedule_round(bool record) {
  merge_staged_candidates();
  if (candidates_.empty()) {
    if (record) result_.trace.push_back(StepRecord{now_, {}, 0});
    return 0;
  }

  std::vector<std::size_t> selected = scheduler_->select(*this, now_, candidates_);

  // Validate the selection is a (b-)matching: per-endpoint load within
  // capacity, each edge used at most once. Scratch arrays are stamped with
  // the round serial so nothing is re-zeroed per round. owner_* tracks the
  // single occupant for the trace path (capacity 1 there by construction).
  ++round_serial_;
  const std::uint64_t round = round_serial_;
  chosen_round_.resize(std::max(chosen_round_.size(), candidates_.size()), 0);
  for (std::size_t index : selected) {
    if (index >= candidates_.size() || chosen_round_[index] == round) {
      throw std::logic_error("scheduler returned an invalid candidate index");
    }
    chosen_round_[index] = round;
    const Candidate& c = candidates_[index];
    const auto e = static_cast<std::size_t>(c.edge);
    const auto t = static_cast<std::size_t>(c.transmitter);
    const auto r = static_cast<std::size_t>(c.receiver);
    if (edge_used_round_[e] == round) {
      throw std::logic_error("scheduler selected one edge twice");
    }
    edge_used_round_[e] = round;
    if (load_t_round_[t] != round) {
      load_t_round_[t] = round;
      load_t_[t] = 0;
    }
    if (load_r_round_[r] != round) {
      load_r_round_[r] = round;
      load_r_[r] = 0;
    }
    if (++load_t_[t] > options_.endpoint_capacity ||
        ++load_r_[r] > options_.endpoint_capacity) {
      throw std::logic_error("scheduler selection exceeds endpoint capacity");
    }
    if (record) {
      owner_t_[t] = c.packet;
      owner_r_[r] = c.packet;
    }
  }

  // Reconfiguration-delay extension: an endpoint only carries a chunk when
  // it is already tuned to that edge; otherwise this selection starts (or
  // retargets) its retuning and the chunk stays queued.
  if (options_.reconfig_delay > 0) {
    std::vector<std::size_t> usable;
    usable.reserve(selected.size());
    for (std::size_t index : selected) {
      const Candidate& c = candidates_[index];
      auto& tc = transmitter_config_[static_cast<std::size_t>(c.transmitter)];
      auto& rc = receiver_config_[static_cast<std::size_t>(c.receiver)];
      bool ready = true;
      if (tc.target != c.edge) {
        tc.target = c.edge;
        tc.ready = now_ + options_.reconfig_delay;
        ready = false;
      } else if (now_ < tc.ready) {
        ready = false;
      }
      if (rc.target != c.edge) {
        rc.target = c.edge;
        rc.ready = now_ + options_.reconfig_delay;
        ready = false;
      } else if (now_ < rc.ready) {
        ready = false;
      }
      if (ready) {
        usable.push_back(index);
      } else {
        chosen_round_[index] = 0;
      }
    }
    selected = std::move(usable);
  }

  StepRecord step;
  step.time = now_;
  step.matching_size = selected.size();
  if (record) step.packets.reserve(candidates_.size());

  // Transmit the selected chunks and account their latency. `remaining`
  // is updated in place on both the packet state and its candidate entry.
  std::vector<std::size_t> finished_slots;
  for (std::size_t index : selected) {
    Candidate& c = candidates_[index];
    auto& remaining = remaining_[static_cast<std::size_t>(c.packet)];
    auto& outcome = result_.outcomes[static_cast<std::size_t>(c.packet)];
    const ReconfigEdge& edge = topology().edge(c.edge);
    const Time completion = now_ + 1 + topology().transmitter_attach_delay(edge.transmitter) +
                            topology().receiver_attach_delay(edge.receiver);
    outcome.chunk_transmit_steps.push_back(now_);
    const double latency = c.chunk_weight * static_cast<double>(completion - c.arrival);
    outcome.weighted_latency += latency;
    result_.reconfig_cost += latency;
    result_.total_cost += latency;
    --remaining;
    c.remaining = remaining;
    if (remaining == 0) {
      outcome.completion = completion;
      result_.makespan = std::max(result_.makespan, completion);
      finished_slots.push_back(index);
    }
  }

  if (record) {
    // For every pending packet, note whether it transmitted and otherwise
    // which transmitted packet blocked it (the heaviest conflicting owner;
    // the charging auditor checks the priority relation separately).
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const Candidate& c = candidates_[i];
      StepPacketRecord rec;
      rec.packet = c.packet;
      rec.transmitted = chosen_round_[i] == round;
      if (!rec.transmitted) {
        const auto t = static_cast<std::size_t>(c.transmitter);
        const auto r = static_cast<std::size_t>(c.receiver);
        const PacketIndex via_t = load_t_round_[t] == round ? owner_t_[t] : -1;
        const PacketIndex via_r = load_r_round_[r] == round ? owner_r_[r] : -1;
        auto better = [this](PacketIndex a, PacketIndex b) {
          // Prefer the blocker earlier in the chunk priority order:
          // heavier chunk first, then earlier arrival, then lower id.
          if (b == -1) return a;
          if (a == -1) return b;
          const Weight wa = chunk_weight_[static_cast<std::size_t>(a)];
          const Weight wb = chunk_weight_[static_cast<std::size_t>(b)];
          if (wa != wb) return wa > wb ? a : b;
          const auto& pa = instance_->packets()[static_cast<std::size_t>(a)];
          const auto& pb = instance_->packets()[static_cast<std::size_t>(b)];
          return arrived_before(pa, pb) ? a : b;
        };
        rec.blocker = better(via_t, via_r);
      }
      step.packets.push_back(rec);
    }
  }
  if (record) result_.trace.push_back(std::move(step));

  // Drop completed packets: one compaction pass over the candidate tail
  // plus scan-free removal from the per-endpoint queues.
  if (!finished_slots.empty()) {
    std::sort(finished_slots.begin(), finished_slots.end());
    for (std::size_t slot : finished_slots) {
      const Candidate& c = candidates_[slot];
      erase_from_queue(pending_by_transmitter_[static_cast<std::size_t>(c.transmitter)],
                       queue_pos_transmitter_, c.packet);
      erase_from_queue(pending_by_receiver_[static_cast<std::size_t>(c.receiver)],
                       queue_pos_receiver_, c.packet);
    }
    std::size_t write = finished_slots.front();
    std::size_t next_finished = 0;
    for (std::size_t read = write; read < candidates_.size(); ++read) {
      if (next_finished < finished_slots.size() && read == finished_slots[next_finished]) {
        ++next_finished;
        continue;
      }
      candidates_[write++] = candidates_[read];
    }
    candidates_.resize(write);
  }
  return selected.size();
}

RunResult Engine::run() {
  const auto& packets = instance_->packets();
  now_ = 0;
  while (work_left()) {
    if (candidates_.empty() && staged_.empty() && next_arrival_ < packets.size() &&
        packets[next_arrival_].arrival > now_ + 1) {
      now_ = packets[next_arrival_].arrival;  // event-driven: jump idle gaps
    } else {
      ++now_;
    }
    ++result_.steps_simulated;
    if (result_.steps_simulated > options_.max_steps) {
      throw std::runtime_error("engine exceeded max_steps; scheduler may be starving packets");
    }
    dispatch_arrivals();
    if (options_.redispatch_queued) redispatch_queued_packets();
    for (int round = 0; round < options_.speedup_rounds; ++round) {
      if (candidates_.empty() && staged_.empty() && round > 0) break;
      schedule_round(options_.record_trace);
    }
  }
  return std::move(result_);
}

RunResult simulate(const Instance& instance, DispatchPolicy& dispatcher,
                   SchedulePolicy& scheduler, EngineOptions options) {
  Engine engine(instance, dispatcher, scheduler, options);
  return engine.run();
}

}  // namespace rdcn
