#pragma once

// ASCII Gantt rendering of schedules: one row per transmitter (and
// optionally per fixed-routed packet), one column per time step, showing
// which packet's chunk crossed each reconfigurable edge when. Used by the
// quickstart-style examples and the CLI `show` subcommand to make
// schedules inspectable at a glance.
//
//   t0 |.012..|
//   t1 |.3.3..|        <- packet 3 (delay 2) occupies two steps
//   fixed p4: 2..6
//
// Cells show the packet id modulo 62 in base-62 (0-9a-zA-Z); '.' = idle.

#include <string>

#include "net/instance.hpp"
#include "sim/engine.hpp"

namespace rdcn {

struct GanttOptions {
  Time from = 0;        ///< first step shown (0 = first arrival)
  Time until = 0;       ///< last step shown, inclusive (0 = makespan)
  bool show_receivers = false;  ///< add per-receiver rows too
  bool show_fixed = true;       ///< list fixed-routed packets below
  std::size_t max_width = 160;  ///< clip long horizons
};

/// Renders the run as an ASCII chart.
std::string render_gantt(const Instance& instance, const RunResult& result,
                         const GanttOptions& options = {});

}  // namespace rdcn
