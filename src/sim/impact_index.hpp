#pragma once

// Incremental per-endpoint impact index (ISSUE 6): the engine-maintained
// order-statistic aggregate behind O(log n) Delta_p(e) queries.
//
// impact_of must resolve, for a probe chunk weight w_p/d(e) against the
// chunks pending at e's transmitter t and receiver r,
//
//   |H_p(e)|   -- count of pending chunks with chunk weight >= w_p/d(e)
//                 (ties go to H: every pending packet arrived earlier), and
//   w(L_p(e))  -- total weight of the strictly lighter pending chunks,
//
// which the naive rule re-derives by scanning both endpoint queues per
// candidate edge. This index instead maintains one weight-keyed treap per
// transmitter, per receiver, and per (t, r) edge group ("pair": parallel
// edges share pending state), each node aggregating every pending chunk of
// one distinct chunk-weight key:
//
//   count          exact remaining-chunk total at this key (int64)
//   value          (double)count * key, re-rounded on every count change
//   sum            subtree total, always bracketed (left + value) + right
//   subtree_count  subtree chunk total (exact)
//
// A query descends once, accumulating the strictly-below-threshold count
// and weight sum; the at-or-above count is the (exact integer) complement.
// The split for an edge combines the three structures with a fixed shape:
//
//   |H| = (H_t + H_r) - H_pair        w(L) = (L_t + L_r) - L_pair
//
// (the pair structure removes the packets double-counted by both endpoint
// queues -- exactly those assigned to a parallel edge of the same pair).
//
// DETERMINISM BY CANONICAL SHAPE. Floating-point sums are association-
// sensitive, and an incremental structure cannot reproduce a flat
// queue-order sum bit-for-bit. The index therefore defines its own
// canonical summation order and makes it a pure function of the pending
// multiset: each node's heap priority is a stateless hash of its key's
// bits, so the treap shape -- hence every bracketing -- depends only on
// the SET of live keys, never on insertion/removal history. Rebuilding
// from scratch provably reproduces the incrementally-maintained sums bit
// for bit, which is what check/'s differential oracle and the property
// tests in tests/test_impact_index.cpp pin. Against the naive queue-order
// scan, |H| matches exactly (integer) while w(L) agrees to reassociation
// tolerance. The engine's schedule goldens verify that this never flips a
// dispatch decision on the pinned workloads.
//
// LIFECYCLE. Integer per-endpoint/per-pair chunk-load counters are always
// maintained, O(1) eagerly, on dispatch, per-chunk service, and unlisting
// -- they make JSQ's edge load a three-counter read with bit-identical
// results. The weight treaps are lazily enabled on the first impact query
// (rebuilt from the engine's candidate lists) and thereafter maintained
// through a deferred-event queue flushed at query time: because the
// structure is a pure function of the current multiset, batching updates
// is equivalent to applying them eagerly. If many maintenance events
// accumulate with no impact query between them (a pure drain under a
// non-impact policy), the weight structures decay -- they are dropped and
// rebuilt at the next query -- so idle maintenance stays O(1) per event
// and bounded in memory. All storage is pooled and grow-once: at steady
// state neither queries nor maintenance touch the heap (pinned by
// tests/test_hotpath.cpp's allocation counter).

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/policy.hpp"

namespace rdcn {

/// Chunks strictly below a weight threshold: exact count plus the
/// canonically-bracketed weight sum.
struct WeightBelow {
  std::int64_t chunks = 0;
  double weight = 0.0;
};

/// The two pending-state terms of Delta_p(e).
struct ImpactSplit {
  std::int64_t heavier = 0;       ///< |H_p(e)|, exact
  double lighter_weight = 0.0;    ///< w(L_p(e)), canonical bracketing
};

/// The single combination formula shared by the live index and every
/// verification oracle, so "bit-for-bit" has one definition: transmitter
/// plus receiver minus the pair overlap, in exactly this association.
inline ImpactSplit combine_impact(std::int64_t t_chunks, const WeightBelow& t,
                                  std::int64_t r_chunks, const WeightBelow& r,
                                  std::int64_t pair_chunks, const WeightBelow& pair) {
  ImpactSplit split;
  split.heavier =
      (t_chunks - t.chunks) + (r_chunks - r.chunks) - (pair_chunks - pair.chunks);
  split.lighter_weight = (t.weight + r.weight) - pair.weight;
  return split;
}

namespace impact_detail {

/// One distinct chunk-weight key of one aggregate (see file comment).
struct TreapNode {
  double key = 0.0;
  double value = 0.0;  ///< (double)count * key
  double sum = 0.0;    ///< (left.sum + value) + right.sum
  std::int64_t count = 0;
  std::int64_t subtree_count = 0;
  std::uint64_t priority = 0;  ///< stateless hash of key bits
  std::int32_t left = -1;
  std::int32_t right = -1;
};

/// Arena of hash-priority treaps: many roots share one node pool (plus a
/// free list), so per-endpoint aggregates cost nothing when empty and the
/// pool grows once to the high-water number of distinct live keys.
class TreapStore {
 public:
  /// Adds `delta` chunks (may be negative) at `key`; returns the new root.
  /// A key whose count reaches zero leaves the tree; removing from an
  /// absent key is an engine bug and throws.
  std::int32_t add(std::int32_t root, double key, std::int64_t delta);

  /// Count and canonical weight sum of the keys strictly below `threshold`.
  WeightBelow below(std::int32_t root, double threshold) const;

  /// Total chunks in the tree (0 for an empty root).
  std::int64_t chunks(std::int32_t root) const {
    return root < 0 ? 0 : pool_[static_cast<std::size_t>(root)].subtree_count;
  }

  /// Drops every tree (roots become dangling; callers reset theirs to -1).
  /// Keeps the pool's capacity.
  void reset() {
    pool_.clear();
    free_ = -1;
    live_ = 0;
  }

  void reserve(std::size_t nodes) {
    pool_.reserve(nodes);
    path_.reserve(64);
  }
  std::size_t live_nodes() const noexcept { return live_; }
  std::size_t pool_capacity() const noexcept { return pool_.capacity(); }

 private:
  std::int32_t add_slow(std::int32_t root, double key, std::int64_t delta);
  std::int32_t alloc(double key, std::int64_t count);
  void release(std::int32_t n);
  void pull(std::int32_t n);
  bool higher_priority(std::int32_t a, std::int32_t b) const;
  std::int32_t rotate_left(std::int32_t n);
  std::int32_t rotate_right(std::int32_t n);
  std::int32_t join(std::int32_t a, std::int32_t b);

  std::vector<TreapNode> pool_;
  std::int32_t free_ = -1;  ///< free-list head threaded through `left`
  std::size_t live_ = 0;
  std::vector<std::int32_t> path_;  ///< add()'s fast-path search-path scratch
};

}  // namespace impact_detail

/// Standalone single-endpoint aggregate over an explicit (chunk_weight,
/// chunks) multiset, built on the same treap code as the live index. The
/// verification oracle: feed it a queue's pending chunks in ANY order and
/// its below()/chunks() reproduce the incrementally-maintained index bit
/// for bit (canonical shape; see file comment).
class ImpactAggregate {
 public:
  void add(double chunk_weight, std::int64_t delta) {
    root_ = store_.add(root_, chunk_weight, delta);
  }
  std::int64_t chunks() const { return store_.chunks(root_); }
  WeightBelow below(double threshold) const { return store_.below(root_, threshold); }
  void clear() {
    store_.reset();
    root_ = -1;
  }

 private:
  impact_detail::TreapStore store_;
  std::int32_t root_ = -1;
};

class ImpactIndex {
 public:
  /// Binds the index to a topology: sizes the per-endpoint arrays and
  /// groups parallel edges into (t, r) pairs. Called from Engine::init.
  void attach(const Topology& topology);

  /// Presizes the treap pool for an expected pending-packet population
  /// (batch mode passes the instance size; each pending packet occupies at
  /// most three nodes, typically shared between packets of equal key).
  void reserve_pending(std::size_t packets);

  std::int32_t pair_of(EdgeIndex e) const {
    return pair_of_[static_cast<std::size_t>(e)];
  }
  std::int32_t num_pairs() const noexcept { return num_pairs_; }

  /// The engine's single mutation hook: `delta` chunks of one packet with
  /// the given chunk weight enter (dispatch) or leave (per-chunk service,
  /// unlisting) edge `e`. Counters update eagerly; weight-structure
  /// updates are deferred until the next query.
  void add_chunks(NodeIndex t, NodeIndex r, EdgeIndex e, double chunk_weight,
                  std::int64_t delta);

  // --- O(1) integer loads (always on) -------------------------------------

  std::int64_t transmitter_chunks(NodeIndex t) const {
    return t_chunks_[static_cast<std::size_t>(t)];
  }
  std::int64_t receiver_chunks(NodeIndex r) const {
    return r_chunks_[static_cast<std::size_t>(r)];
  }
  std::int64_t pair_chunks(std::int32_t pair) const {
    return p_chunks_[static_cast<std::size_t>(pair)];
  }
  /// JSQ's signal: pending chunks parked at e's endpoints, each packet
  /// counted once. Bit-identical to the old two-queue scan (integer sums
  /// commute), at O(1).
  std::int64_t edge_load(EdgeIndex e) const {
    const ReconfigEdge& edge = topology_->edge(e);
    return t_chunks_[static_cast<std::size_t>(edge.transmitter)] +
           r_chunks_[static_cast<std::size_t>(edge.receiver)] -
           p_chunks_[static_cast<std::size_t>(pair_of_[static_cast<std::size_t>(e)])];
  }

  // --- weight-structure queries (lazily enabled) --------------------------

  bool weight_ready() const noexcept { return weight_ready_; }

  /// (Re)builds the weight treaps from the engine's candidate lists (the
  /// full pending multiset) and enables query-time maintenance. The engine
  /// calls this lazily on the first impact query and again after a decay.
  void rebuild(const std::vector<Candidate>& merged, const std::vector<Candidate>& staged);

  /// |H| and w(L) for edge `e` at `threshold` = w_p/d(e); requires
  /// weight_ready(). Flushes deferred maintenance first (O(log n) each),
  /// then answers in O(log n).
  ImpactSplit edge_split(EdgeIndex e, double threshold);

  /// Test hooks.
  std::size_t deferred_events() const noexcept { return events_.size(); }
  std::size_t live_weight_nodes() const noexcept { return store_.live_nodes(); }
  /// Times rebuild() ran (lazy enables + post-decay rebuilds) -- surfaced
  /// as the probe's index_rebuilds counter.
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  struct Event {
    double chunk_weight = 0.0;
    std::int64_t delta = 0;
    NodeIndex transmitter = 0;
    NodeIndex receiver = 0;
    std::int32_t pair = 0;
  };

  void apply_weight(NodeIndex t, NodeIndex r, std::int32_t pair, double chunk_weight,
                    std::int64_t delta);
  void flush();
  void decay();

  const Topology* topology_ = nullptr;
  std::vector<std::int32_t> pair_of_;  ///< edge -> (t, r) group id
  std::int32_t num_pairs_ = 0;

  std::vector<std::int64_t> t_chunks_, r_chunks_, p_chunks_;

  impact_detail::TreapStore store_;
  std::vector<std::int32_t> t_root_, r_root_, p_root_;
  std::vector<Event> events_;  ///< deferred while weight_ready_; capacity-bounded
  bool weight_ready_ = false;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace rdcn
