#include "sim/impact_index.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace rdcn {

namespace impact_detail {

namespace {

/// Heap priority = stateless hash of the key's bit pattern: two trees
/// holding the same key set always have the same shape, which is the
/// purity property every bit-for-bit guarantee in this file rests on.
std::uint64_t priority_of(double key) {
  std::uint64_t state = std::bit_cast<std::uint64_t>(key);
  return splitmix64(state);
}

}  // namespace

bool TreapStore::higher_priority(std::int32_t a, std::int32_t b) const {
  const TreapNode& na = pool_[static_cast<std::size_t>(a)];
  const TreapNode& nb = pool_[static_cast<std::size_t>(b)];
  if (na.priority != nb.priority) return na.priority > nb.priority;
  // Hash collisions between distinct keys are vanishingly rare but must
  // still order deterministically for the shape to stay canonical.
  return na.key < nb.key;
}

std::int32_t TreapStore::alloc(double key, std::int64_t count) {
  if (count <= 0) {
    throw std::logic_error("impact index: removing chunks at an absent weight key");
  }
  std::int32_t n;
  if (free_ >= 0) {
    n = free_;
    free_ = pool_[static_cast<std::size_t>(n)].left;
  } else {
    n = static_cast<std::int32_t>(pool_.size());
    pool_.emplace_back();
  }
  TreapNode& node = pool_[static_cast<std::size_t>(n)];
  node.key = key;
  node.count = count;
  node.value = static_cast<double>(count) * key;
  node.sum = node.value;
  node.subtree_count = count;
  node.priority = priority_of(key);
  node.left = node.right = -1;
  ++live_;
  return n;
}

void TreapStore::release(std::int32_t n) {
  pool_[static_cast<std::size_t>(n)].left = free_;
  free_ = n;
  --live_;
}

void TreapStore::pull(std::int32_t n) {
  TreapNode& node = pool_[static_cast<std::size_t>(n)];
  const std::int32_t l = node.left;
  const std::int32_t r = node.right;
  node.value = static_cast<double>(node.count) * node.key;
  const double left_sum = l >= 0 ? pool_[static_cast<std::size_t>(l)].sum : 0.0;
  const double right_sum = r >= 0 ? pool_[static_cast<std::size_t>(r)].sum : 0.0;
  node.sum = (left_sum + node.value) + right_sum;
  node.subtree_count = node.count +
                       (l >= 0 ? pool_[static_cast<std::size_t>(l)].subtree_count : 0) +
                       (r >= 0 ? pool_[static_cast<std::size_t>(r)].subtree_count : 0);
}

std::int32_t TreapStore::rotate_right(std::int32_t n) {
  const std::int32_t l = pool_[static_cast<std::size_t>(n)].left;
  pool_[static_cast<std::size_t>(n)].left = pool_[static_cast<std::size_t>(l)].right;
  pool_[static_cast<std::size_t>(l)].right = n;
  pull(n);
  pull(l);
  return l;
}

std::int32_t TreapStore::rotate_left(std::int32_t n) {
  const std::int32_t r = pool_[static_cast<std::size_t>(n)].right;
  pool_[static_cast<std::size_t>(n)].right = pool_[static_cast<std::size_t>(r)].left;
  pool_[static_cast<std::size_t>(r)].left = n;
  pull(n);
  pull(r);
  return r;
}

std::int32_t TreapStore::join(std::int32_t a, std::int32_t b) {
  // Joining the canonical treaps of two key ranges yields the canonical
  // treap of their union: priorities alone decide the merge order.
  if (a < 0) return b;
  if (b < 0) return a;
  if (higher_priority(a, b)) {
    const std::int32_t merged = join(pool_[static_cast<std::size_t>(a)].right, b);
    pool_[static_cast<std::size_t>(a)].right = merged;
    pull(a);
    return a;
  }
  const std::int32_t merged = join(a, pool_[static_cast<std::size_t>(b)].left);
  pool_[static_cast<std::size_t>(b)].left = merged;
  pull(b);
  return b;
}

std::int32_t TreapStore::add(std::int32_t root, double key, std::int64_t delta) {
  // Fast path: a count change at a key already in the tree (the dominant
  // stream -- one per served chunk) leaves the shape untouched, so only
  // the aggregates along the search path need recomputing. pull() here is
  // bit-identical to the recursive unwind of add_slow: same nodes, same
  // bottom-up order, same bracketing. Falls back to the general
  // insert/remove when the key is absent or its count drains to zero.
  path_.clear();
  std::int32_t n = root;
  while (n >= 0) {
    const TreapNode& node = pool_[static_cast<std::size_t>(n)];
    if (key == node.key) break;
    path_.push_back(n);
    n = key < node.key ? node.left : node.right;
  }
  if (n >= 0 && pool_[static_cast<std::size_t>(n)].count + delta > 0) {
    pool_[static_cast<std::size_t>(n)].count += delta;
    pull(n);
    for (std::size_t i = path_.size(); i-- > 0;) pull(path_[i]);
    return root;
  }
  return add_slow(root, key, delta);
}

std::int32_t TreapStore::add_slow(std::int32_t root, double key, std::int64_t delta) {
  // NOTE: pool_ may reallocate inside recursive calls (alloc), so node
  // fields are always re-read through pool_[...] after a call returns.
  if (root < 0) return alloc(key, delta);
  const double root_key = pool_[static_cast<std::size_t>(root)].key;
  if (key == root_key) {
    TreapNode& node = pool_[static_cast<std::size_t>(root)];
    node.count += delta;
    if (node.count < 0) {
      throw std::logic_error("impact index: chunk count went negative");
    }
    if (node.count == 0) {
      const std::int32_t merged = join(node.left, node.right);
      release(root);
      return merged;
    }
    pull(root);
    return root;
  }
  if (key < root_key) {
    const std::int32_t child = add_slow(pool_[static_cast<std::size_t>(root)].left, key, delta);
    pool_[static_cast<std::size_t>(root)].left = child;
    if (child >= 0 && higher_priority(child, root)) return rotate_right(root);
    pull(root);
    return root;
  }
  const std::int32_t child = add_slow(pool_[static_cast<std::size_t>(root)].right, key, delta);
  pool_[static_cast<std::size_t>(root)].right = child;
  if (child >= 0 && higher_priority(child, root)) return rotate_left(root);
  pull(root);
  return root;
}

WeightBelow TreapStore::below(std::int32_t root, double threshold) const {
  // One descent, visiting the strictly-below nodes in increasing key
  // order; the running sum's association is therefore fixed by the
  // (canonical) shape, independent of update history.
  WeightBelow result;
  std::int32_t n = root;
  while (n >= 0) {
    const TreapNode& node = pool_[static_cast<std::size_t>(n)];
    if (node.key < threshold) {
      if (node.left >= 0) {
        const TreapNode& left = pool_[static_cast<std::size_t>(node.left)];
        result.chunks += left.subtree_count;
        result.weight += left.sum;
      }
      result.chunks += node.count;
      result.weight += node.value;
      n = node.right;
    } else {
      n = node.left;
    }
  }
  return result;
}

}  // namespace impact_detail

void ImpactIndex::attach(const Topology& topology) {
  topology_ = &topology;
  const auto num_t = static_cast<std::size_t>(topology.num_transmitters());
  const auto num_r = static_cast<std::size_t>(topology.num_receivers());
  const auto num_e = static_cast<std::size_t>(topology.num_edges());

  // Group parallel edges by (transmitter, receiver) in O(E + R): walk each
  // transmitter's edges and stamp the receivers it reaches. A hash map (or
  // a sort) here is measurably expensive because attach runs once per
  // engine construction. Nothing depends on the pair numbering beyond
  // consistency.
  pair_of_.assign(num_e, -1);
  std::vector<std::int32_t> receiver_stamp(num_r, -1);
  std::vector<std::int32_t> receiver_pair(num_r, -1);
  num_pairs_ = 0;
  for (NodeIndex t = 0; t < static_cast<NodeIndex>(num_t); ++t) {
    for (EdgeIndex e : topology.edges_of_transmitter(t)) {
      const auto r = static_cast<std::size_t>(topology.edge(e).receiver);
      if (receiver_stamp[r] != t) {
        receiver_stamp[r] = t;
        receiver_pair[r] = num_pairs_++;
      }
      pair_of_[static_cast<std::size_t>(e)] = receiver_pair[r];
    }
  }

  t_chunks_.assign(num_t, 0);
  r_chunks_.assign(num_r, 0);
  p_chunks_.assign(static_cast<std::size_t>(num_pairs_), 0);
  t_root_.assign(num_t, -1);
  r_root_.assign(num_r, -1);
  p_root_.assign(static_cast<std::size_t>(num_pairs_), -1);
  store_.reset();
  // Deferred-event capacity doubles as the decay threshold (see
  // add_chunks): fixed up front so maintenance never reallocates it, and
  // sized so several full scheduling rounds of per-chunk service fit
  // between consecutive impact queries without forcing a decay/rebuild.
  events_.clear();
  events_.reserve(std::max<std::size_t>(256, 8 * std::min(num_t, num_r)));
  weight_ready_ = false;
}

void ImpactIndex::reserve_pending(std::size_t packets) {
  // Each pending packet holds one key in its transmitter, receiver and
  // pair structure; distinct-key nodes are shared, so 3x packets is a
  // ceiling, capped to keep huge batch instances from over-reserving.
  store_.reserve(3 * std::min<std::size_t>(packets, 1u << 16));
}

void ImpactIndex::add_chunks(NodeIndex t, NodeIndex r, EdgeIndex e, double chunk_weight,
                             std::int64_t delta) {
  const std::int32_t pair = pair_of_[static_cast<std::size_t>(e)];
  t_chunks_[static_cast<std::size_t>(t)] += delta;
  r_chunks_[static_cast<std::size_t>(r)] += delta;
  p_chunks_[static_cast<std::size_t>(pair)] += delta;
  if (!weight_ready_) return;
  if (events_.size() == events_.capacity()) {
    // Long maintenance streak with no impact query in between: drop the
    // weight structures instead of growing the queue; the next query
    // rebuilds from the then-current multiset (purity makes that exact).
    decay();
    return;
  }
  events_.push_back(Event{chunk_weight, delta, t, r, pair});
}

void ImpactIndex::apply_weight(NodeIndex t, NodeIndex r, std::int32_t pair,
                               double chunk_weight, std::int64_t delta) {
  auto& t_root = t_root_[static_cast<std::size_t>(t)];
  t_root = store_.add(t_root, chunk_weight, delta);
  auto& r_root = r_root_[static_cast<std::size_t>(r)];
  r_root = store_.add(r_root, chunk_weight, delta);
  auto& p_root = p_root_[static_cast<std::size_t>(pair)];
  p_root = store_.add(p_root, chunk_weight, delta);
}

void ImpactIndex::flush() {
  for (const Event& event : events_) {
    apply_weight(event.transmitter, event.receiver, event.pair, event.chunk_weight,
                 event.delta);
  }
  events_.clear();
}

void ImpactIndex::decay() {
  store_.reset();
  std::fill(t_root_.begin(), t_root_.end(), -1);
  std::fill(r_root_.begin(), r_root_.end(), -1);
  std::fill(p_root_.begin(), p_root_.end(), -1);
  events_.clear();
  weight_ready_ = false;
}

void ImpactIndex::rebuild(const std::vector<Candidate>& merged,
                          const std::vector<Candidate>& staged) {
  decay();
  weight_ready_ = true;
  ++rebuilds_;
  for (const std::vector<Candidate>* list : {&merged, &staged}) {
    for (const Candidate& c : *list) {
      if (c.remaining <= 0) continue;
      apply_weight(c.transmitter, c.receiver, pair_of_[static_cast<std::size_t>(c.edge)],
                   c.chunk_weight, c.remaining);
    }
  }
}

ImpactSplit ImpactIndex::edge_split(EdgeIndex e, double threshold) {
  if (!weight_ready_) {
    throw std::logic_error("impact index: edge_split before rebuild");
  }
  if (!events_.empty()) flush();
  const ReconfigEdge& edge = topology_->edge(e);
  const std::int32_t t_root = t_root_[static_cast<std::size_t>(edge.transmitter)];
  const std::int32_t r_root = r_root_[static_cast<std::size_t>(edge.receiver)];
  const std::int32_t p_root = p_root_[static_cast<std::size_t>(pair_of_[static_cast<std::size_t>(e)])];
  return combine_impact(store_.chunks(t_root), store_.below(t_root, threshold),
                        store_.chunks(r_root), store_.below(r_root, threshold),
                        store_.chunks(p_root), store_.below(p_root, threshold));
}

}  // namespace rdcn
