#include "sim/metrics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rdcn {

double recompute_cost(const Instance& instance, const RunResult& result) {
  const Topology& topology = instance.topology();
  double total = 0.0;
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];
    if (outcome.route.use_fixed) {
      const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
      total += packet.weight * static_cast<double>(*direct);
      continue;
    }
    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Delay tail = topology.transmitter_attach_delay(edge.transmitter) +
                       topology.receiver_attach_delay(edge.receiver);
    const double chunk_weight = packet.weight / static_cast<double>(edge.delay);
    for (Time transmit : outcome.chunk_transmit_steps) {
      total += chunk_weight * static_cast<double>(transmit + 1 + tail - packet.arrival);
    }
  }
  return total;
}

double recompute_cost_active_form(const Instance& instance, const RunResult& result) {
  // Integrate, step by step, the total weight of not-yet-delivered
  // fractions: packet p contributes (1 - X_tau) * w_p at every tau >= a_p
  // (Section II's continuous interpretation). We accumulate each chunk's
  // weight over its active window via difference arrays.
  const Topology& topology = instance.topology();
  std::map<Time, double> delta;  // weight entering/leaving at each step
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];
    if (outcome.route.use_fixed) {
      delta[packet.arrival] += packet.weight;
      delta[outcome.completion] -= packet.weight;
      continue;
    }
    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    const Delay tail = topology.transmitter_attach_delay(edge.transmitter) +
                       topology.receiver_attach_delay(edge.receiver);
    const double chunk_weight = packet.weight / static_cast<double>(edge.delay);
    for (Time transmit : outcome.chunk_transmit_steps) {
      delta[packet.arrival] += chunk_weight;
      delta[transmit + 1 + tail] -= chunk_weight;
    }
  }
  double total = 0.0;
  double active = 0.0;
  Time previous = 0;
  for (const auto& [time, change] : delta) {
    total += active * static_cast<double>(time - previous);
    active += change;
    previous = time;
  }
  return total;
}

bool all_delivered(const Instance& instance, const RunResult& result) {
  if (result.outcomes.size() != instance.num_packets()) return false;
  const Topology& topology = instance.topology();
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const PacketOutcome& outcome = result.outcomes[i];
    if (outcome.completion <= 0) return false;
    if (outcome.route.use_fixed) {
      if (!topology.fixed_link_delay(instance.packets()[i].source,
                                     instance.packets()[i].destination)) {
        return false;
      }
      continue;
    }
    const ReconfigEdge& edge = topology.edge(outcome.route.edge);
    if (outcome.chunk_transmit_steps.size() != static_cast<std::size_t>(edge.delay)) {
      return false;
    }
  }
  return true;
}

std::vector<LinkStats> link_stats(const Instance& instance, const RunResult& result) {
  std::vector<LinkStats> stats(static_cast<std::size_t>(instance.topology().num_edges()));
  Time span_start = instance.num_packets() ? instance.packets().front().arrival : 1;
  const Time span = std::max<Time>(1, result.makespan - span_start);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const PacketOutcome& outcome = result.outcomes[i];
    if (outcome.route.use_fixed) continue;
    LinkStats& entry = stats[static_cast<std::size_t>(outcome.route.edge)];
    for (Time transmit : outcome.chunk_transmit_steps) {
      ++entry.chunks_carried;
      if (entry.first_busy == 0 || transmit < entry.first_busy) entry.first_busy = transmit;
      entry.last_busy = std::max(entry.last_busy, transmit);
    }
  }
  for (LinkStats& entry : stats) {
    entry.utilization = static_cast<double>(entry.chunks_carried) / static_cast<double>(span);
  }
  return stats;
}

double load_concentration(const Instance& instance, const RunResult& result) {
  const std::vector<LinkStats> stats = link_stats(instance, result);
  double total = 0.0;
  for (const LinkStats& entry : stats) total += static_cast<double>(entry.chunks_carried);
  if (total <= 0.0) return 0.0;
  double herfindahl = 0.0;
  for (const LinkStats& entry : stats) {
    const double share = static_cast<double>(entry.chunks_carried) / total;
    herfindahl += share * share;
  }
  return herfindahl;
}

ScheduleSummary summarize(const Instance& instance, const RunResult& result) {
  ScheduleSummary summary;
  summary.total_cost = result.total_cost;
  summary.makespan = result.makespan;
  if (instance.num_packets() == 0) return summary;
  std::size_t reconfig = 0;
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const PacketOutcome& outcome = result.outcomes[i];
    summary.max_latency =
        std::max(summary.max_latency, static_cast<double>(outcome.completion - packet.arrival));
    if (!outcome.route.use_fixed) ++reconfig;
  }
  summary.mean_weighted_latency =
      summary.total_cost / static_cast<double>(instance.num_packets());
  summary.reconfig_fraction =
      static_cast<double>(reconfig) / static_cast<double>(instance.num_packets());
  return summary;
}

StreamTelemetry::StreamTelemetry(Time window_steps) : window_steps_(window_steps) {
  if (window_steps < 1) throw std::invalid_argument("window_steps must be >= 1");
}

void StreamTelemetry::flush_window() {
  current_.mean_backlog =
      current_.steps > 0 ? backlog_sum_ / static_cast<double>(current_.steps) : 0.0;
  if (probe_ != nullptr) {
    // The probe's phase times are cumulative; each window keeps the delta
    // against the previous flush.
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      const std::uint64_t total = probe_->phase_self_ns(static_cast<Phase>(i));
      current_.phase_ns[i] = total - phase_snapshot_[i];
      phase_snapshot_[i] = total;
    }
  }
  windows_.push_back(current_);
  current_ = StreamWindow{};
  backlog_sum_ = 0.0;
}

void StreamTelemetry::on_step(Time now, std::uint64_t arrivals, std::uint64_t served,
                              std::size_t in_flight, const Probe* probe) {
  if (probe != nullptr) probe_ = probe;
  if (current_.steps == 0) current_.start = now;
  ++current_.steps;
  current_.arrivals += arrivals;
  current_.served += served;
  backlog_sum_ += static_cast<double>(in_flight);
  current_.peak_backlog = std::max(current_.peak_backlog,
                                   static_cast<std::uint64_t>(in_flight));
  if (current_.steps >= window_steps_) flush_window();
}

void StreamTelemetry::absorb_boundary(std::uint64_t served) {
  if (served == 0) return;
  if (windows_.empty() || current_.steps > 0) {
    current_.served += served;  // lands in the trailing partial window
  } else {
    windows_.back().served += served;
  }
}

const std::vector<StreamWindow>& StreamTelemetry::finish() {
  if (current_.steps > 0 || current_.served > 0) flush_window();
  return windows_;
}

}  // namespace rdcn
