#pragma once

// Metric helpers over RunResults: recompute costs from first principles
// (used to cross-check the engine's incremental accounting), and summarize
// schedules for the benchmark tables.

#include <array>

#include "net/instance.hpp"
#include "sim/engine.hpp"
#include "sim/probe.hpp"

namespace rdcn {

/// Recomputes the total weighted fractional latency from the per-chunk
/// transmit steps / fixed routes alone (independent of the engine's
/// incremental accounting).
double recompute_cost(const Instance& instance, const RunResult& result);

/// Equivalent continuous-form accounting (Section II): every active
/// fraction of a packet pays its weight each step. Equals recompute_cost.
double recompute_cost_active_form(const Instance& instance, const RunResult& result);

/// True iff every packet completed and chunk counts match route delays.
bool all_delivered(const Instance& instance, const RunResult& result);

struct ScheduleSummary {
  double total_cost = 0.0;
  double mean_weighted_latency = 0.0;  ///< cost / num packets
  double max_latency = 0.0;            ///< max packet (completion - arrival)
  Time makespan = 0;
  double reconfig_fraction = 0.0;  ///< share of packets routed reconfigurably
};

ScheduleSummary summarize(const Instance& instance, const RunResult& result);

/// Per-reconfigurable-edge usage statistics over a run.
struct LinkStats {
  std::int64_t chunks_carried = 0;  ///< chunks transmitted on the edge
  Time first_busy = 0;              ///< first transmit step (0 = never used)
  Time last_busy = 0;               ///< last transmit step
  double utilization = 0.0;  ///< busy steps / steps in [first arrival, makespan)
};

/// One entry per topology edge; utilization relative to the run's span.
std::vector<LinkStats> link_stats(const Instance& instance, const RunResult& result);

/// Herfindahl-style load concentration over edges in [1/E, 1]: 1 = all
/// traffic on one link, 1/E = perfectly spread. Useful for skew studies.
double load_concentration(const Instance& instance, const RunResult& result);

// --- streaming telemetry -----------------------------------------------

/// One fixed-length window of a streamed run's time series.
struct StreamWindow {
  Time start = 0;             ///< clock value of the window's first step
  Time steps = 0;             ///< steps observed (the last window may be short)
  std::uint64_t arrivals = 0; ///< packets injected during the window
  std::uint64_t served = 0;   ///< packets retired during the window
  double mean_backlog = 0.0;  ///< mean in-flight packets over the steps
  std::uint64_t peak_backlog = 0;
  /// Per-phase self time spent during this window's steps (Phase order;
  /// all-zero unless the engine runs with a probe and the driver passes it
  /// to on_step) -- latency-vs-load curves ship with a time breakdown.
  std::array<std::uint64_t, kNumPhases> phase_ns{};
};

/// Folds per-step observations of a streamed run into fixed-length
/// windows (throughput / backlog series): bounded memory regardless of
/// how many packets the run serves. Feed one on_step per engine step;
/// finish() flushes the trailing partial window.
class StreamTelemetry {
 public:
  explicit StreamTelemetry(Time window_steps);

  /// `probe`, when non-null, attributes the engine's per-phase time to
  /// windows: each flushed window stores the delta of the probe's
  /// cumulative phase_self_ns against the previous flush.
  void on_step(Time now, std::uint64_t arrivals, std::uint64_t served,
               std::size_t in_flight, const Probe* probe = nullptr);
  /// Folds retirements that happen between steps (stage-boundary mutations
  /// requeueing packets onto the fixed layer retire them inside the
  /// mutation, outside any step bracket) into the trailing window so the
  /// series served total matches the run's.
  void absorb_boundary(std::uint64_t served);
  /// Flushes the open partial window (idempotent) and returns the series.
  const std::vector<StreamWindow>& finish();

  const std::vector<StreamWindow>& windows() const noexcept { return windows_; }
  Time window_steps() const noexcept { return window_steps_; }

 private:
  void flush_window();

  Time window_steps_;
  StreamWindow current_{};
  double backlog_sum_ = 0.0;
  const Probe* probe_ = nullptr;  ///< last probe seen by on_step
  std::array<std::uint64_t, kNumPhases> phase_snapshot_{};
  std::vector<StreamWindow> windows_;
};

}  // namespace rdcn
