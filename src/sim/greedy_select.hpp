#pragma once

// Shared scratch for greedy maximal-matching schedulers (FIFO, the
// randomized family, random-maximal): accept candidates in a caller-
// imposed order whenever both endpoints are still free. Endpoint-busy
// state is serial-stamped -- bumping one counter frees every endpoint --
// so a round costs one pass over the candidates with direct topology
// indexing: no per-round clearing, no dense remap, no allocations after
// the arrays grow to the topology size once. (Measured against the
// active-endpoint remap of engine.active_endpoints(): for these O(1)-per-
// candidate passes the extra remap pass costs more than compact bitsets
// save; the remap pays off for matrix-shaped state -- MaxWeight, iSLIP.)

// rdcn-lint: hot-file

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace rdcn {

struct GreedySelectScratch {
  std::uint64_t serial = 0;
  std::vector<std::uint64_t> transmitter_taken;  ///< taken iff == serial
  std::vector<std::uint64_t> receiver_taken;

  /// Greedily accepts `order`'s candidates (indices into `candidates`)
  /// whose endpoints are both free, appending accepted indices to `out`
  /// in acceptance order.
  void select_in_order(const Engine& engine, const std::vector<Candidate>& candidates,
                       const std::vector<std::size_t>& order, Selection& out) {
    transmitter_taken.resize(static_cast<std::size_t>(engine.topology().num_transmitters()),
                             0);
    receiver_taken.resize(static_cast<std::size_t>(engine.topology().num_receivers()), 0);
    ++serial;
    for (std::size_t idx : order) {
      const Candidate& c = candidates[idx];
      auto& t_taken = transmitter_taken[static_cast<std::size_t>(c.transmitter)];
      auto& r_taken = receiver_taken[static_cast<std::size_t>(c.receiver)];
      if (t_taken == serial || r_taken == serial) continue;
      t_taken = serial;
      r_taken = serial;
      out.push(idx);
    }
  }
};

}  // namespace rdcn
