#pragma once

// Small-inline record of a packet's chunk transmit steps.
//
// Every dispatched packet reserves a d(e_p)-slot step log up front so the
// service loop never reallocates mid-run; with a plain std::vector that
// reserve was one heap allocation (plus one free at retirement) per packet
// and dominated the batch-mode allocation profile. d(e) is a small integer
// in every realistic topology, so the steps live inline up to kInline and
// only spill to the heap for long-delay edges.
//
// The interface mirrors the std::vector subset the consumers use (range
// iteration, size/empty/at/operator[], push_back/reserve/clear, value
// equality -- including against a std::vector<Time>, which the transmit
// auditor keeps as its independent ledger type).

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"

namespace rdcn {

class ChunkSteps {
 public:
  using value_type = Time;
  using const_iterator = const Time*;
  using iterator = Time*;

  ChunkSteps() noexcept : data_(inline_), capacity_(kInline) {}
  ChunkSteps(std::initializer_list<Time> init) : ChunkSteps() {
    reserve(init.size());
    for (Time t : init) data_[size_++] = t;
  }
  ChunkSteps(const ChunkSteps& other) : ChunkSteps() {
    reserve(other.size_);
    std::copy(other.data_, other.data_ + other.size_, data_);
    size_ = other.size_;
  }
  ChunkSteps(ChunkSteps&& other) noexcept : ChunkSteps() { steal(other); }
  ChunkSteps& operator=(const ChunkSteps& other) {
    if (this != &other) {
      size_ = 0;
      reserve(other.size_);
      std::copy(other.data_, other.data_ + other.size_, data_);
      size_ = other.size_;
    }
    return *this;
  }
  ChunkSteps& operator=(ChunkSteps&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~ChunkSteps() {
    if (data_ != inline_) delete[] data_;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const Time* begin() const noexcept { return data_; }
  const Time* end() const noexcept { return data_ + size_; }
  Time* begin() noexcept { return data_; }
  Time* end() noexcept { return data_ + size_; }

  Time operator[](std::size_t i) const { return data_[i]; }
  Time& operator[](std::size_t i) { return data_[i]; }
  Time at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ChunkSteps::at");
    return data_[i];
  }

  void clear() noexcept { size_ = 0; }
  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }
  void push_back(Time t) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = t;
  }

 private:
  static constexpr std::size_t kInline = 4;

  void grow(std::size_t n) {
    Time* heap = new Time[n];
    std::copy(data_, data_ + size_, heap);
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    capacity_ = n;
  }
  void release() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    size_ = 0;
    capacity_ = kInline;
  }
  /// Leaves `other` empty; heap storage transfers, inline storage copies.
  void steal(ChunkSteps& other) noexcept {
    if (other.data_ == other.inline_) {
      std::copy(other.data_, other.data_ + other.size_, inline_);
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_;
      other.size_ = 0;
      other.capacity_ = kInline;
    }
  }

  Time inline_[kInline];
  Time* data_;
  std::size_t size_ = 0;
  std::size_t capacity_;
};

inline bool operator==(const ChunkSteps& a, const ChunkSteps& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}
inline bool operator!=(const ChunkSteps& a, const ChunkSteps& b) { return !(a == b); }
inline bool operator==(const ChunkSteps& a, const std::vector<Time>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}
inline bool operator==(const std::vector<Time>& a, const ChunkSteps& b) { return b == a; }
inline bool operator!=(const ChunkSteps& a, const std::vector<Time>& b) { return !(a == b); }
inline bool operator!=(const std::vector<Time>& a, const ChunkSteps& b) { return !(b == a); }

inline std::ostream& operator<<(std::ostream& os, const ChunkSteps& steps) {
  os << '[';
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) os << ", ";
    os << steps[i];
  }
  return os << ']';
}

}  // namespace rdcn
