#pragma once

// Engine observation interface for the check/ validation subsystem.
//
// When EngineOptions::audit is set, the engine constructs an
// InvariantAuditor (see src/check/audit.hpp) through make_invariant_auditor
// and calls it at every state transition: step begin, packet dispatch,
// scheduler selection (before the engine's own validation), chunk
// transmission, packet retirement, and step end. The auditor maintains an
// independent per-packet ledger and re-derives every invariant from the
// topology and the observed events alone, so a bug in the engine's
// incremental accounting cannot hide itself. Violations throw AuditFailure.
//
// The interface lives in sim/ (below check/) so the engine can hold an
// observer without an include cycle; the only implementation ships in
// src/check/audit.cpp and is linked through the factory below.

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/policy.hpp"

namespace rdcn {

class Engine;
struct PacketOutcome;

/// Thrown by the invariant auditor when an engine invariant is violated.
/// Distinct from std::logic_error so tests (and the fuzz driver) can tell
/// "the auditor caught it" apart from the engine's own contract checks.
class AuditFailure : public std::logic_error {
 public:
  explicit AuditFailure(const std::string& what) : std::logic_error(what) {}
};

/// Per-step engine observer. All hooks run synchronously inside the engine
/// step; `engine` is the observed engine in its current (mid-step) state.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// After the clock advanced (and the max_steps guard passed).
  virtual void on_step_begin(const Engine& engine, Time previous_now) = 0;

  /// A packet was handed to the dispatcher and `route` is about to be
  /// applied. Called again for the same packet only under
  /// EngineOptions::redispatch_queued (before any chunk transmitted).
  virtual void on_dispatch(const Engine& engine, const Packet& packet,
                           const RouteDecision& route) = 0;

  /// The scheduler returned `selected` (indices into `candidates`), before
  /// the engine's own validation runs -- the auditor independently verifies
  /// the selection is a feasible (b-)matching.
  virtual void on_selection(const Engine& engine, const std::vector<Candidate>& candidates,
                            const std::vector<std::size_t>& selected) = 0;

  /// The chunks of `transmitted` (indices into `candidates`, a subset of
  /// the validated selection after reconfiguration-delay filtering) are
  /// transmitted this round; candidate `remaining` values are pre-decrement.
  virtual void on_round(const Engine& engine, const std::vector<Candidate>& candidates,
                        const std::vector<std::size_t>& transmitted) = 0;

  /// `packet` completed with `outcome` (called before the outcome leaves
  /// the engine through the sink / result vector).
  virtual void on_retire(const Engine& engine, PacketIndex packet,
                         const PacketOutcome& outcome) = 0;

  /// `packet` was dropped by a stage mutation (its edge died, or it
  /// arrived for a pair with no surviving route) and `outcome` -- with
  /// outcome.dropped set and completion 0 -- is about to leave the engine.
  /// For an arrival-time drop the packet was never seen by on_dispatch.
  /// Default no-op so observers predating stage mutations stay valid.
  virtual void on_drop(const Engine& engine, PacketIndex packet,
                       const PacketOutcome& outcome) {
    (void)engine, (void)packet, (void)outcome;
  }

  /// A stage mutation killed `packet`'s edge before any chunk transmitted
  /// and the packet is about to be re-dispatched (an on_dispatch for the
  /// same packet follows within the same apply_mutation call).
  virtual void on_requeue(const Engine& engine, PacketIndex packet) {
    (void)engine, (void)packet;
  }

  /// All scheduling rounds of the step ran and retirements are applied.
  virtual void on_step_end(const Engine& engine) = 0;
};

/// Builds the check/ subsystem's invariant auditor (defined in
/// src/check/audit.cpp; everything links into the one rdcn library).
std::unique_ptr<EngineObserver> make_invariant_auditor();

}  // namespace rdcn
