#include "sim/probe.hpp"

#include <utility>

namespace rdcn {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::Dispatch: return "dispatch";
    case Phase::IndexMaintenance: return "index_maintenance";
    case Phase::Select: return "select";
    case Phase::Validate: return "validate";
    case Phase::Service: return "service_retire";
    case Phase::MergeCompact: return "merge_compact";
  }
  return "?";
}

const char* to_string(Counter counter) {
  switch (counter) {
    case Counter::Rounds: return "rounds";
    case Counter::ChunksTransmitted: return "chunks_transmitted";
    case Counter::PacketsDispatched: return "packets_dispatched";
    case Counter::PacketsRetired: return "packets_retired";
    case Counter::CandidatesMerged: return "candidates_merged";
    case Counter::ImpactQueries: return "impact_queries";
    case Counter::IndexRebuilds: return "index_rebuilds";
    case Counter::DroppedEvents: return "dropped_events";
    case Counter::PacketsDropped: return "packets_dropped";
    case Counter::PacketsRequeued: return "packets_requeued";
    case Counter::StageMutations: return "stage_mutations";
  }
  return "?";
}

const char* to_string(Gauge gauge) {
  switch (gauge) {
    case Gauge::PendingCandidates: return "pending_candidates";
    case Gauge::SelectedPerRound: return "selected_per_round";
    case Gauge::ActiveTransmitters: return "active_transmitters";
    case Gauge::ActiveReceivers: return "active_receivers";
    case Gauge::TreapNodes: return "treap_nodes";
    case Gauge::InFlight: return "in_flight";
  }
  return "?";
}

std::uint64_t ProbeReport::instrumented_ns() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t ns : phase_self_ns) total += ns;
  return total;
}

void merge_report(ProbeReport& into, const ProbeReport& from) {
  into.enabled = into.enabled || from.enabled;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    into.phase_self_ns[i] += from.phase_self_ns[i];
    into.phase_total_ns[i] += from.phase_total_ns[i];
    into.phase_calls[i] += from.phase_calls[i];
  }
  for (std::size_t i = 0; i < kNumCounters; ++i) into.counters[i] += from.counters[i];
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    into.gauge_last[i] = from.gauge_last[i];
    if (from.gauge_max[i] > into.gauge_max[i]) into.gauge_max[i] = from.gauge_max[i];
  }
  into.wall_ns += from.wall_ns;
}

json::Value report_to_json(const ProbeReport& report) {
  json::Object phases;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    json::Object phase;
    phase.emplace_back("calls",
                       json::Value(static_cast<std::int64_t>(report.phase_calls[i])));
    phase.emplace_back("self_ns",
                       json::Value(static_cast<std::int64_t>(report.phase_self_ns[i])));
    phase.emplace_back("total_ns",
                       json::Value(static_cast<std::int64_t>(report.phase_total_ns[i])));
    phases.emplace_back(to_string(static_cast<Phase>(i)), json::Value(std::move(phase)));
  }
  json::Object counters;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    counters.emplace_back(to_string(static_cast<Counter>(i)),
                          json::Value(static_cast<std::int64_t>(report.counters[i])));
  }
  json::Object gauges;
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    json::Object gauge;
    gauge.emplace_back("last",
                       json::Value(static_cast<std::int64_t>(report.gauge_last[i])));
    gauge.emplace_back("max", json::Value(static_cast<std::int64_t>(report.gauge_max[i])));
    gauges.emplace_back(to_string(static_cast<Gauge>(i)), json::Value(std::move(gauge)));
  }
  json::Object document;
  document.emplace_back("wall_ns", json::Value(static_cast<std::int64_t>(report.wall_ns)));
  document.emplace_back("phases", json::Value(std::move(phases)));
  document.emplace_back("counters", json::Value(std::move(counters)));
  document.emplace_back("gauges", json::Value(std::move(gauges)));
  return json::Value(std::move(document));
}

Probe::Probe(const ProbeConfig& config) : epoch_(std::chrono::steady_clock::now()) {
  // The only allocation the probe ever performs: ring slots are reused
  // (drop-oldest) once full, so steady state stays off the heap.
  ring_.resize(config.event_capacity);
}

void Probe::begin_span(Phase phase) noexcept {
  if (depth_ >= kMaxSpanDepth) {
    ++overflow_depth_;  // folded into the deepest tracked ancestor
    return;
  }
  Frame& frame = stack_[depth_++];
  frame.phase = phase;
  frame.child_ns = 0;
  frame.start_ns = now_ns();
}

void Probe::end_span() noexcept {
  if (overflow_depth_ > 0) {
    --overflow_depth_;
    return;
  }
  const std::uint64_t end = now_ns();
  Frame& frame = stack_[--depth_];
  const std::uint64_t elapsed = end - frame.start_ns;
  const auto p = static_cast<std::size_t>(frame.phase);
  // Self time excludes closed child spans; with nesting by containment the
  // per-phase self times partition the instrumented wall clock.
  phase_self_ns_[p] += elapsed - (frame.child_ns < elapsed ? frame.child_ns : elapsed);
  phase_total_ns_[p] += elapsed;
  ++phase_calls_[p];
  if (depth_ > 0) stack_[depth_ - 1].child_ns += elapsed;
  if (!ring_.empty()) {
    trace::TraceEvent& slot = ring_[ring_next_];
    if (ring_size_ == ring_.size()) {
      ++counters_[static_cast<std::size_t>(Counter::DroppedEvents)];
    } else {
      ++ring_size_;
    }
    slot.name = to_string(frame.phase);
    slot.start_ns = frame.start_ns;
    slot.dur_ns = elapsed;
    slot.depth = static_cast<std::uint32_t>(depth_);
    ring_next_ = ring_next_ + 1 == ring_.size() ? 0 : ring_next_ + 1;
  }
}

ProbeReport Probe::report() const {
  ProbeReport report;
  report.enabled = true;
  report.phase_self_ns = phase_self_ns_;
  report.phase_total_ns = phase_total_ns_;
  report.phase_calls = phase_calls_;
  report.counters = counters_;
  report.gauge_last = gauge_last_;
  report.gauge_max = gauge_max_;
  report.wall_ns = now_ns();
  return report;
}

std::vector<trace::TraceEvent> Probe::events() const {
  std::vector<trace::TraceEvent> out;
  out.reserve(ring_size_);
  const std::size_t oldest = ring_size_ == ring_.size() ? ring_next_ : 0;
  for (std::size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

std::string Probe::chrome_trace_json(int indent) const {
  json::Object other;
  other.emplace_back("probe", report_to_json(report()));
  return trace::chrome_trace_json(events(), std::move(other), indent);
}

}  // namespace rdcn
