#pragma once

// Policy interfaces for the time-stepped engine. Every scheduler in this
// repo -- the paper's ALG and all baselines -- is a (DispatchPolicy,
// SchedulePolicy) pair:
//
//  * the dispatcher runs once per packet, at its (integral) arrival, and
//    irrevocably commits the packet to either the fixed direct link or to
//    one transmitter-receiver edge (the paper's non-migratory routing);
//  * the schedule policy runs once per transmission step and picks which
//    pending chunks cross the reconfigurable layer; the engine enforces
//    that the picked edges form a matching.

#include <cstdint>
#include <vector>

#include "net/instance.hpp"

namespace rdcn {

class Engine;

/// Routing commitment for one packet.
struct RouteDecision {
  bool use_fixed = false;
  EdgeIndex edge = kInvalidEdge;  ///< valid iff !use_fixed
  /// The dispatcher's a-priori bound on the packet's charge (the paper's
  /// alpha_p = Delta_p(e_p) or w_p*dl(p)); baselines may leave it 0.
  double alpha = 0.0;
};

/// One pending packet's head-of-line chunk at the current step.
struct Candidate {
  PacketIndex packet = 0;
  EdgeIndex edge = kInvalidEdge;
  NodeIndex transmitter = 0;
  NodeIndex receiver = 0;
  Weight chunk_weight = 0.0;  ///< w_p / d(e_p)
  Time arrival = 0;           ///< a_p
  std::int64_t remaining = 0; ///< untransmitted chunks of the packet
};

/// The single total order on chunks used everywhere in the paper:
/// decreasing chunk weight, then increasing packet arrival, then input
/// sequence position. Section III-B's requirement that "from two chunks of
/// the same weight, the chunk of the earlier arriving packet is preferred"
/// and Section III-C's scheduler ordering are both instances of this order;
/// using one comparator keeps the dispatcher's H/L classification and the
/// scheduler's blocking relation consistent (which Lemma 2 relies on).
///
/// The engine maintains its pending-candidate list sorted by this order
/// (see SchedulePolicy::select), so priority-driven schedulers never sort.
inline bool chunk_higher_priority(const Candidate& a, const Candidate& b) noexcept {
  if (a.chunk_weight != b.chunk_weight) return a.chunk_weight > b.chunk_weight;
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.packet < b.packet;
}

/// Output buffer of one SchedulePolicy::select call: the candidate indices
/// to transmit this round. The engine owns one Selection and hands the
/// same object to every round (cleared), so a policy that also keeps its
/// working buffers as members runs the steady-state round loop without a
/// single heap allocation -- the vector below only grows to the high-water
/// matching size once. Policies append via push(); order is up to the
/// policy (the engine treats the selection as a set).
class Selection {
 public:
  void clear() noexcept { indices_.clear(); }
  void push(std::size_t candidate_index) { indices_.push_back(candidate_index); }

  std::size_t size() const noexcept { return indices_.size(); }
  bool empty() const noexcept { return indices_.empty(); }
  const std::vector<std::size_t>& indices() const noexcept { return indices_; }
  /// In-place access for callers that filter or reorder what a policy
  /// produced (the engine's reconfiguration-delay pass, test harnesses).
  std::vector<std::size_t>& mutable_indices() noexcept { return indices_; }

 private:
  std::vector<std::size_t> indices_;
};

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  /// Called once per packet, in arrival order, at time == packet.arrival,
  /// after all earlier packets of the same step were dispatched.
  virtual RouteDecision dispatch(const Engine& engine, const Packet& packet) = 0;
};

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  /// Fills `out` (cleared by the caller) with indices into `candidates` to
  /// transmit this step. The engine checks the selection occupies each
  /// transmitter/receiver at most once (or up to endpoint_capacity).
  ///
  /// Contract:
  ///  * `candidates` is sorted by chunk_higher_priority (decreasing chunk
  ///    weight, then arrival, then packet id) -- the engine maintains the
  ///    list incrementally across steps, so priority-driven schedulers can
  ///    scan it in index order without sorting. Order-sensitive policies
  ///    (FIFO, randomized) impose their own order on top as before.
  ///  * `out` is an engine-owned scratch buffer reused across rounds;
  ///    policies must not keep references to it. Policies are expected to
  ///    keep their own working storage in members sized on first use so
  ///    the steady-state round loop allocates nothing (see the
  ///    allocation-counting test in tests/test_hotpath.cpp).
  ///  * Engine::active_endpoints(candidates) exposes a dense remap of the
  ///    endpoints that currently carry pending candidates, so per-endpoint
  ///    working state can be sized by the number of busy endpoints instead
  ///    of the topology.
  virtual void select(const Engine& engine, Time now,
                      const std::vector<Candidate>& candidates, Selection& out) = 0;
};

}  // namespace rdcn
