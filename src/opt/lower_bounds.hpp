#pragma once

// Facade over the three OPT lower bounds used by the benchmark harness.
//
//  * lp_bound          -- optimum of primal LP P at budget 1/(2+eps)
//                         (exact value of the relaxation; small instances);
//  * dual_witness_bound-- D/2 from an ALG run's dual-fitting witness
//                         (Lemma 5; cheap, scales to large instances);
//  * trivial_bound     -- sum of per-packet best-case path latencies.
//
// All three lower-bound the cost of any schedule with transmission budget
// 1/(2+eps); with eps' <= eps the bound only weakens, so they are also
// valid against slower optima.

#include <optional>

#include "net/instance.hpp"

namespace rdcn {

struct LowerBounds {
  std::optional<double> lp_bound;  ///< set when the LP was attempted and solved
  double dual_witness_bound = 0.0;
  double trivial_bound = 0.0;

  /// The strongest available bound (>= 0).
  double best() const;
};

struct LowerBoundOptions {
  double eps = 1.0;
  /// Solve the LP only when the estimated variable count stays below this
  /// (the dense simplex is cubic-ish); 0 disables the LP entirely.
  std::size_t max_lp_variables = 4000;
};

LowerBounds compute_lower_bounds(const Instance& instance, const LowerBoundOptions& options);

}  // namespace rdcn
