#pragma once

// Output-queueing relaxation -- the single-tier yardstick of Chuang, Goel,
// McKeown, Prabhakar [21] ("matching output queueing with a CIOQ switch").
//
// Drop every constraint except the destination's: at each step, a
// destination can absorb at most (number of its receivers) x capacity
// packets, each completing one step after service starts. For unit
// packets, serving the heaviest pending packet first is optimal for
// weighted flow time on such a uniform server (exchange argument), so the
// per-destination heaviest-first schedule is an exact optimum of the
// relaxation -- hence a valid lower bound on every real schedule,
// including ALG's with any matching constraints on top.

#include "net/instance.hpp"

namespace rdcn {

struct OutputQueueingOptions {
  /// Packets a destination absorbs per step per attached receiver; 1 is
  /// the base model, k models a k-speed switch fabric.
  int service_per_receiver = 1;
};

/// Lower bound on the weighted fractional latency of ANY unit-speed
/// schedule of the instance (ignores transmitter contention, matching
/// constraints, and all path delays beyond the minimal 1-step service).
double output_queueing_bound(const Instance& instance,
                             const OutputQueueingOptions& options = {});

}  // namespace rdcn
