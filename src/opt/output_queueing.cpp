#include "opt/output_queueing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace rdcn {

double output_queueing_bound(const Instance& instance,
                             const OutputQueueingOptions& options) {
  if (options.service_per_receiver < 1) {
    throw std::invalid_argument("service_per_receiver must be >= 1");
  }
  const Topology& topology = instance.topology();

  struct Job {
    Time arrival;
    double weight;
  };
  std::vector<std::vector<Job>> per_destination(
      static_cast<std::size_t>(topology.num_destinations()));
  for (const Packet& packet : instance.packets()) {
    per_destination[static_cast<std::size_t>(packet.destination)].push_back(
        Job{packet.arrival, packet.weight});
  }

  double total = 0.0;
  for (NodeIndex dest = 0; dest < topology.num_destinations(); ++dest) {
    auto& jobs = per_destination[static_cast<std::size_t>(dest)];
    if (jobs.empty()) continue;
    // A destination absorbs at most one packet per attached receiver per
    // step; destinations reachable only via fixed links still pay >= 1
    // step each, which a 1-per-step server under-counts safely.
    const std::size_t receivers = topology.receivers_of_destination(dest).size();
    const std::size_t capacity = std::max<std::size_t>(
        1, receivers * static_cast<std::size_t>(options.service_per_receiver));

    std::sort(jobs.begin(), jobs.end(),
              [](const Job& a, const Job& b) { return a.arrival < b.arrival; });

    // Heaviest-first is optimal for unit jobs with release dates on a
    // c-slot server; simulate it. Every undelivered packet pays its weight
    // once per step (the fractional-latency accounting); a packet served
    // in step `clock` completes at clock + 1, so it pays this step too.
    std::priority_queue<double> heap;
    double pending_weight = 0.0;
    std::size_t index = 0;
    Time clock = jobs.front().arrival;
    while (index < jobs.size() || !heap.empty()) {
      if (heap.empty() && index < jobs.size() && jobs[index].arrival > clock) {
        clock = jobs[index].arrival;  // fast-forward over idle gaps
      }
      while (index < jobs.size() && jobs[index].arrival <= clock) {
        heap.push(jobs[index].weight);
        pending_weight += jobs[index].weight;
        ++index;
      }
      total += pending_weight;
      for (std::size_t slot = 0; slot < capacity && !heap.empty(); ++slot) {
        pending_weight -= heap.top();
        heap.pop();
      }
      ++clock;
    }
  }
  return total;
}

}  // namespace rdcn
