#include "opt/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace rdcn {

namespace {

struct BudgetExceeded {};

/// Per-assignment exact scheduler: min cost of delivering all chunks.
class ScheduleSearch {
 public:
  ScheduleSearch(const Instance& instance, const std::vector<EdgeIndex>& route,
                 const BruteForceLimits& limits, std::uint64_t& states)
      : instance_(&instance), limits_(&limits), states_(&states) {
    const Topology& topology = instance.topology();
    for (std::size_t i = 0; i < instance.num_packets(); ++i) {
      if (route[i] == kInvalidEdge) continue;  // fixed-route packet
      const ReconfigEdge& edge = topology.edge(route[i]);
      Job job;
      job.packet = static_cast<PacketIndex>(i);
      job.arrival = instance.packets()[i].arrival;
      job.transmitter = edge.transmitter;
      job.receiver = edge.receiver;
      job.chunks = edge.delay;
      job.chunk_weight = instance.packets()[i].weight / static_cast<double>(edge.delay);
      job.tail = topology.transmitter_attach_delay(edge.transmitter) +
                 topology.receiver_attach_delay(edge.receiver);
      jobs_.push_back(job);
    }
    std::sort(jobs_.begin(), jobs_.end(),
              [](const Job& a, const Job& b) { return a.arrival < b.arrival; });
    strides_.resize(jobs_.size());
    std::uint64_t stride = 1;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      strides_[j] = stride;
      stride *= static_cast<std::uint64_t>(jobs_[j].chunks + 1);
    }
    horizon_ = instance.horizon_bound();
  }

  double solve() {
    std::vector<Delay> remaining(jobs_.size());
    Time start = std::numeric_limits<Time>::max();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      remaining[j] = jobs_[j].chunks;
      start = std::min(start, jobs_[j].arrival);
    }
    if (jobs_.empty()) return 0.0;
    return search(start, remaining);
  }

 private:
  struct Job {
    PacketIndex packet = 0;
    Time arrival = 0;
    NodeIndex transmitter = 0;
    NodeIndex receiver = 0;
    Delay chunks = 0;
    double chunk_weight = 0.0;
    Delay tail = 0;
  };

  std::uint64_t encode(Time time, const std::vector<Delay>& remaining) const {
    std::uint64_t index = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      index += strides_[j] * static_cast<std::uint64_t>(remaining[j]);
    }
    return index * static_cast<std::uint64_t>(horizon_ + 2) + static_cast<std::uint64_t>(time);
  }

  double search(Time time, std::vector<Delay>& remaining) {
    if (++*states_ > limits_->max_states) throw BudgetExceeded{};
    if (time > horizon_) throw std::logic_error("brute force exceeded horizon");

    std::vector<std::size_t> pending;
    bool future_work = false;
    Time next_arrival = std::numeric_limits<Time>::max();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (remaining[j] == 0) continue;
      if (jobs_[j].arrival <= time) {
        pending.push_back(j);
      } else {
        future_work = true;
        next_arrival = std::min(next_arrival, jobs_[j].arrival);
      }
    }
    if (pending.empty()) {
      if (!future_work) return 0.0;
      return search(next_arrival, remaining);
    }

    const std::uint64_t key = encode(time, remaining);
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Enumerate all maximal matchings over the pending jobs' endpoints.
    double best = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> chosen;
    enumerate(time, remaining, pending, 0, chosen, best);
    memo_.emplace(key, best);
    return best;
  }

  void enumerate(Time time, std::vector<Delay>& remaining,
                 const std::vector<std::size_t>& pending, std::size_t index,
                 std::vector<std::size_t>& chosen, double& best) {
    if (index == pending.size()) {
      // Maximality: every unchosen pending job must conflict with a chosen
      // one (transmitting more is never worse, so only maximal sets matter).
      for (std::size_t j : pending) {
        bool is_chosen = false;
        bool conflicts = false;
        for (std::size_t c : chosen) {
          if (c == j) {
            is_chosen = true;
            break;
          }
          if (jobs_[c].transmitter == jobs_[j].transmitter ||
              jobs_[c].receiver == jobs_[j].receiver) {
            conflicts = true;
          }
        }
        if (!is_chosen && !conflicts) return;  // not maximal; skip branch
      }
      double step_cost = 0.0;
      for (std::size_t c : chosen) {
        const Job& job = jobs_[c];
        step_cost += job.chunk_weight *
                     static_cast<double>(time + 1 + job.tail - job.arrival);
        --remaining[c];
      }
      const double rest = search(time + 1, remaining);
      for (std::size_t c : chosen) ++remaining[c];
      best = std::min(best, step_cost + rest);
      return;
    }

    const std::size_t j = pending[index];
    // Branch 1: include j when endpoints are free.
    bool free = true;
    for (std::size_t c : chosen) {
      if (jobs_[c].transmitter == jobs_[j].transmitter ||
          jobs_[c].receiver == jobs_[j].receiver) {
        free = false;
        break;
      }
    }
    if (free) {
      chosen.push_back(j);
      enumerate(time, remaining, pending, index + 1, chosen, best);
      chosen.pop_back();
    }
    // Branch 2: exclude j.
    enumerate(time, remaining, pending, index + 1, chosen, best);
  }

  const Instance* instance_;
  const BruteForceLimits* limits_;
  std::uint64_t* states_;
  std::vector<Job> jobs_;
  std::vector<std::uint64_t> strides_;
  Time horizon_ = 0;
  std::unordered_map<std::uint64_t, double> memo_;
};

}  // namespace

std::optional<BruteForceResult> brute_force_opt(const Instance& instance,
                                                const BruteForceLimits& limits) {
  if (instance.num_packets() > limits.max_packets) return std::nullopt;
  const Topology& topology = instance.topology();

  // Route options per packet: each candidate edge, plus kInvalidEdge for
  // the fixed link when one exists.
  std::vector<std::vector<EdgeIndex>> options(instance.num_packets());
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    options[i] = topology.candidate_edges(packet.source, packet.destination);
    if (topology.fixed_link_delay(packet.source, packet.destination)) {
      options[i].push_back(kInvalidEdge);
    }
  }

  BruteForceResult result;
  result.cost = std::numeric_limits<double>::infinity();
  std::vector<EdgeIndex> route(instance.num_packets());

  // Iterative odometer over the assignment product space.
  std::vector<std::size_t> cursor(instance.num_packets(), 0);
  try {
    while (true) {
      double fixed_cost = 0.0;
      for (std::size_t i = 0; i < instance.num_packets(); ++i) {
        route[i] = options[i][cursor[i]];
        if (route[i] == kInvalidEdge) {
          const Packet& packet = instance.packets()[i];
          fixed_cost += packet.weight * static_cast<double>(*topology.fixed_link_delay(
                                            packet.source, packet.destination));
        }
      }
      ++result.assignments_tried;
      ScheduleSearch search(instance, route, limits, result.states_explored);
      result.cost = std::min(result.cost, fixed_cost + search.solve());

      // Advance the odometer.
      std::size_t position = 0;
      while (position < cursor.size()) {
        if (++cursor[position] < options[position].size()) break;
        cursor[position] = 0;
        ++position;
      }
      if (position == cursor.size()) break;
      if (cursor.empty()) break;
    }
  } catch (const BudgetExceeded&) {
    return std::nullopt;
  }
  if (instance.num_packets() == 0) result.cost = 0.0;
  return result;
}

}  // namespace rdcn
