#include "opt/lower_bounds.hpp"

#include <algorithm>

#include "core/alg.hpp"
#include "core/dual_witness.hpp"
#include "lp/paper_lps.hpp"

namespace rdcn {

double LowerBounds::best() const {
  double bound = std::max(0.0, trivial_bound);
  bound = std::max(bound, dual_witness_bound);
  if (lp_bound) bound = std::max(bound, *lp_bound);
  return bound;
}

LowerBounds compute_lower_bounds(const Instance& instance, const LowerBoundOptions& options) {
  LowerBounds bounds;
  bounds.trivial_bound = instance.ideal_cost();

  const RunResult alg = run_alg(instance);
  const DualWitness witness = build_dual_witness(instance, alg);
  bounds.dual_witness_bound = std::max(0.0, witness.lower_bound(options.eps));

  if (options.max_lp_variables > 0) {
    // Estimate the x-variable count before committing to the dense solver.
    const Time horizon = default_lp_horizon(instance, options.eps);
    std::size_t variables = 0;
    for (const Packet& packet : instance.packets()) {
      const auto edges =
          instance.topology().candidate_edges(packet.source, packet.destination);
      variables += edges.size() * static_cast<std::size_t>(horizon - packet.arrival + 1);
    }
    if (variables <= options.max_lp_variables) {
      bounds.lp_bound = lp_opt_lower_bound(instance, options.eps, horizon);
    }
  }
  return bounds;
}

}  // namespace rdcn
