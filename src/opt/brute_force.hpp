#pragma once

// Exact offline optimum for tiny instances, by exhaustive search:
//  * enumerate every route assignment (each packet -> one candidate edge
//    or the fixed link), the paper's non-migratory integral schedules;
//  * for each assignment, find the cost-minimal schedule by DFS over
//    per-step matchings of pending chunks, memoized on (time, remaining).
// Transmitting more never hurts (chunks are independent and per-step
// matchings do not constrain the future), so only maximal matchings are
// branched on.
//
// This verifies Figure 1's "the optimal solution of this instance is 7"
// claim, and anchors the LP lower bound tests.

#include <cstdint>
#include <optional>

#include "net/instance.hpp"

namespace rdcn {

struct BruteForceLimits {
  std::size_t max_packets = 10;
  std::uint64_t max_states = 50'000'000;  ///< search-node guard
};

struct BruteForceResult {
  double cost = 0.0;
  std::uint64_t states_explored = 0;
  std::uint64_t assignments_tried = 0;
};

/// Exact minimum total weighted fractional latency over all non-migratory
/// integral schedules at unit speed. Returns nullopt if limits are hit.
std::optional<BruteForceResult> brute_force_opt(const Instance& instance,
                                                const BruteForceLimits& limits = {});

}  // namespace rdcn
