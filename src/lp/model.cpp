#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rdcn::lp {

std::size_t Model::add_variable(double objective_coefficient, std::string name) {
  objective_.push_back(objective_coefficient);
  if (name.empty()) name = "x" + std::to_string(objective_.size() - 1);
  names_.push_back(std::move(name));
  return objective_.size() - 1;
}

void Model::add_constraint(std::vector<Term> terms, Relation relation, double rhs) {
  for (const Term& term : terms) {
    if (term.variable >= objective_.size()) {
      throw std::out_of_range("constraint references unknown variable");
    }
  }
  constraints_.push_back(Constraint{std::move(terms), relation, rhs});
}

double Model::objective_value(const std::vector<double>& values) const {
  double total = 0.0;
  for (std::size_t v = 0; v < objective_.size(); ++v) total += objective_[v] * values.at(v);
  return total;
}

double Model::max_violation(const std::vector<double>& values) const {
  double worst = 0.0;
  for (std::size_t v = 0; v < objective_.size(); ++v) {
    worst = std::max(worst, -values.at(v));
  }
  for (const Constraint& constraint : constraints_) {
    double lhs = 0.0;
    for (const Term& term : constraint.terms) lhs += term.coefficient * values.at(term.variable);
    switch (constraint.relation) {
      case Relation::LessEq:
        worst = std::max(worst, lhs - constraint.rhs);
        break;
      case Relation::GreaterEq:
        worst = std::max(worst, constraint.rhs - lhs);
        break;
      case Relation::Equal:
        worst = std::max(worst, std::abs(lhs - constraint.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace rdcn::lp
