#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdcn::lp {

namespace {

/// Dense two-phase tableau. Columns: structural | slack/surplus |
/// artificial. Rows carry Ax = b with b >= 0; `basis[i]` is the basic
/// column of row i. The reduced-cost row is maintained incrementally.
class Tableau {
 public:
  Tableau(const Model& model, const SolveOptions& options) : options_(options) {
    const std::size_t n = model.num_variables();
    const std::size_t m = model.num_constraints();
    // Normalized rows: coefficients over structural vars, relation, rhs>=0.
    struct Row {
      std::vector<double> a;
      Relation relation;
      double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(m);
    for (const Constraint& constraint : model.constraints()) {
      Row row;
      row.a.assign(n, 0.0);
      for (const Term& term : constraint.terms) row.a[term.variable] += term.coefficient;
      row.relation = constraint.relation;
      row.rhs = constraint.rhs;
      if (row.rhs < 0) {
        for (double& coeff : row.a) coeff = -coeff;
        row.rhs = -row.rhs;
        if (row.relation == Relation::LessEq) {
          row.relation = Relation::GreaterEq;
        } else if (row.relation == Relation::GreaterEq) {
          row.relation = Relation::LessEq;
        }
      }
      rows.push_back(std::move(row));
    }

    // Column layout.
    num_structural_ = n;
    std::size_t num_slack = 0;
    for (const Row& row : rows) {
      if (row.relation != Relation::Equal) ++num_slack;
    }
    std::size_t num_artificial = 0;
    for (const Row& row : rows) {
      if (row.relation != Relation::LessEq) ++num_artificial;
    }
    first_artificial_ = n + num_slack;
    num_columns_ = n + num_slack + num_artificial;

    a_.assign(m, std::vector<double>(num_columns_, 0.0));
    b_.assign(m, 0.0);
    basis_.assign(m, 0);

    std::size_t slack_cursor = n;
    std::size_t artificial_cursor = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      std::copy(rows[i].a.begin(), rows[i].a.end(), a_[i].begin());
      b_[i] = rows[i].rhs;
      switch (rows[i].relation) {
        case Relation::LessEq:
          a_[i][slack_cursor] = 1.0;
          basis_[i] = slack_cursor++;
          break;
        case Relation::GreaterEq:
          a_[i][slack_cursor] = -1.0;
          ++slack_cursor;
          a_[i][artificial_cursor] = 1.0;
          basis_[i] = artificial_cursor++;
          break;
        case Relation::Equal:
          a_[i][artificial_cursor] = 1.0;
          basis_[i] = artificial_cursor++;
          break;
      }
    }

    // Structural costs in minimization sense.
    cost_.assign(num_columns_, 0.0);
    const double sign = model.maximize() ? -1.0 : 1.0;
    for (std::size_t j = 0; j < n; ++j) cost_[j] = sign * model.objective()[j];
  }

  SolveStatus run(Solution& solution, bool maximize) {
    // ---- Phase 1: minimize the sum of artificials. ----
    if (first_artificial_ < num_columns_) {
      reduced_.assign(num_columns_, 0.0);
      objective_value_ = 0.0;
      for (std::size_t j = first_artificial_; j < num_columns_; ++j) reduced_[j] = 1.0;
      for (std::size_t i = 0; i < a_.size(); ++i) {
        if (basis_[i] >= first_artificial_) {
          for (std::size_t j = 0; j < num_columns_; ++j) reduced_[j] -= a_[i][j];
          objective_value_ -= b_[i];
        }
      }
      const SolveStatus phase1 = iterate(solution, /*allow_artificial=*/true);
      if (phase1 != SolveStatus::Optimal) return phase1;
      if (-objective_value_ > 1e-7) return SolveStatus::Infeasible;
      drive_out_artificials();
    }

    // ---- Phase 2: minimize the real cost over the feasible basis. ----
    reduced_ = cost_;
    objective_value_ = 0.0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      const double basic_cost = cost_[basis_[i]];
      if (basic_cost == 0.0) continue;
      for (std::size_t j = 0; j < num_columns_; ++j) reduced_[j] -= basic_cost * a_[i][j];
      objective_value_ -= basic_cost * b_[i];
    }
    const SolveStatus phase2 = iterate(solution, /*allow_artificial=*/false);
    if (phase2 != SolveStatus::Optimal) return phase2;

    solution.values.assign(num_structural_, 0.0);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < num_structural_) solution.values[basis_[i]] = b_[i];
    }
    const double min_objective = -objective_value_;
    solution.objective = maximize ? -min_objective : min_objective;
    return SolveStatus::Optimal;
  }

 private:
  void pivot(std::size_t row, std::size_t col) {
    const double pivot_value = a_[row][col];
    for (double& coeff : a_[row]) coeff /= pivot_value;
    b_[row] /= pivot_value;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < num_columns_; ++j) a_[i][j] -= factor * a_[row][j];
      a_[i][col] = 0.0;  // cancel rounding residue on the pivot column
      b_[i] -= factor * b_[row];
    }
    const double reduced_factor = reduced_[col];
    if (reduced_factor != 0.0) {
      for (std::size_t j = 0; j < num_columns_; ++j) {
        reduced_[j] -= reduced_factor * a_[row][j];
      }
      reduced_[col] = 0.0;
      objective_value_ -= reduced_factor * b_[row];
    }
    basis_[row] = col;
  }

  SolveStatus iterate(Solution& solution, bool allow_artificial) {
    const double tol = options_.tolerance;
    const std::size_t limit = allow_artificial ? num_columns_ : first_artificial_;
    while (true) {
      if (solution.iterations >= options_.max_iterations) return SolveStatus::IterationLimit;
      const bool bland = solution.iterations >= options_.bland_after;

      // Entering column: most negative reduced cost (or Bland: first).
      std::size_t entering = num_columns_;
      double best = -tol;
      for (std::size_t j = 0; j < limit; ++j) {
        if (reduced_[j] < best) {
          entering = j;
          if (bland) break;
          best = reduced_[j];
        }
      }
      if (entering == num_columns_) return SolveStatus::Optimal;

      // Ratio test; prefer larger pivots among (near-)ties, and Bland's
      // smallest-basis-index rule when anti-cycling.
      std::size_t leaving = a_.size();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < a_.size(); ++i) {
        const double coeff = a_[i][entering];
        if (coeff <= tol) continue;
        const double ratio = b_[i] / coeff;
        const bool strictly_better = ratio < best_ratio - tol;
        const bool tie = std::abs(ratio - best_ratio) <= tol;
        bool take = false;
        if (leaving == a_.size() || strictly_better) {
          take = true;
        } else if (tie) {
          take = bland ? basis_[i] < basis_[leaving]
                       : coeff > a_[leaving][entering];
        }
        if (take) {
          leaving = i;
          best_ratio = std::min(best_ratio, ratio);
        }
      }
      if (leaving == a_.size()) return SolveStatus::Unbounded;

      pivot(leaving, entering);
      ++solution.iterations;
    }
  }

  /// After phase 1, swap any artificial still in the basis (at value 0)
  /// for a non-artificial column, or leave it pinned when its row is
  /// redundant (phase 2 forbids artificial entering columns anyway).
  void drive_out_artificials() {
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(a_[i][j]) > 1e-7) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  const SolveOptions options_;
  std::size_t num_structural_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_columns_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<std::size_t> basis_;
  std::vector<double> cost_;  ///< phase-2 costs (minimization sense)
  std::vector<double> reduced_;
  double objective_value_ = 0.0;  ///< negative of current objective
};

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  Solution solution;
  if (model.num_constraints() == 0) {
    // With x >= 0 and no rows, the optimum is at 0 unless some coefficient
    // improves without bound.
    solution.values.assign(model.num_variables(), 0.0);
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      const double c = model.objective()[j];
      if ((model.maximize() && c > 0) || (!model.maximize() && c < 0)) {
        solution.status = SolveStatus::Unbounded;
        return solution;
      }
    }
    solution.status = SolveStatus::Optimal;
    solution.objective = 0.0;
    return solution;
  }
  Tableau tableau(model, options);
  solution.status = tableau.run(solution, model.maximize());
  return solution;
}

}  // namespace rdcn::lp
