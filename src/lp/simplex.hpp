#pragma once

// Two-phase dense tableau simplex with Dantzig pricing and a Bland's-rule
// fallback for anti-cycling. Written from scratch (no external solver is
// available offline); adequate for the few-thousand-nonzero LPs the
// reproduction needs. Returns primal variable values on optimality.

#include <cstddef>
#include <vector>

#include "lp/model.hpp"

namespace rdcn::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct SolveOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-9;
  /// Switch from Dantzig to Bland pivoting after this many iterations
  /// (guarantees termination on degenerate problems).
  std::size_t bland_after = 20000;
};

struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;            ///< in the model's sense (max or min)
  std::vector<double> values;        ///< per model variable
  std::size_t iterations = 0;
};

Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace rdcn::lp
