#include "lp/paper_lps.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace rdcn {

namespace {
constexpr std::size_t kNoVar = std::numeric_limits<std::size_t>::max();
}

Time default_lp_horizon(const Instance& instance, double eps) {
  Time max_arrival = 1;
  for (const Packet& p : instance.packets()) max_arrival = std::max(max_arrival, p.arrival);
  Delay max_delay = 1;
  for (EdgeIndex e = 0; e < instance.topology().num_edges(); ++e) {
    max_delay = std::max(max_delay, instance.topology().edge(e).delay);
  }
  const double serial_steps =
      (2.0 + eps) * static_cast<double>(instance.num_packets()) *
      static_cast<double>(max_delay);
  return max_arrival + static_cast<Time>(std::ceil(serial_steps)) + 1;
}

PrimalLp build_primal_lp(const Instance& instance, const PaperLpOptions& options) {
  const Topology& topology = instance.topology();
  PrimalLp result;
  result.horizon = options.horizon > 0 ? options.horizon
                                       : default_lp_horizon(instance, options.eps);
  const double budget = 1.0 / (2.0 + options.eps);

  lp::Model& model = result.model;
  model.set_maximize(false);
  result.y_index.assign(instance.num_packets(), kNoVar);

  // Capacity rows, keyed (endpoint, tau); built sparsely as terms appear.
  std::vector<std::vector<lp::Term>> t_rows(
      static_cast<std::size_t>(topology.num_transmitters()) *
      static_cast<std::size_t>(result.horizon + 1));
  std::vector<std::vector<lp::Term>> r_rows(
      static_cast<std::size_t>(topology.num_receivers()) *
      static_cast<std::size_t>(result.horizon + 1));
  const auto t_key = [&](NodeIndex t, Time tau) {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(result.horizon + 1) +
           static_cast<std::size_t>(tau);
  };
  const auto r_key = [&](NodeIndex r, Time tau) {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(result.horizon + 1) +
           static_cast<std::size_t>(tau);
  };

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    std::vector<lp::Term> completeness;

    for (EdgeIndex e : topology.candidate_edges(packet.source, packet.destination)) {
      const ReconfigEdge& edge = topology.edge(e);
      const double total_delay = static_cast<double>(topology.total_edge_delay(e));
      for (Time tau = packet.arrival; tau <= result.horizon; ++tau) {
        const double latency =
            packet.weight * (static_cast<double>(tau - packet.arrival) + total_delay);
        const std::size_t var = model.add_variable(
            latency, "x_p" + std::to_string(i) + "_e" + std::to_string(e) + "_t" +
                         std::to_string(tau));
        result.x_vars.push_back(PrimalLp::XVar{packet.id, e, tau});
        result.x_indices.push_back(var);
        completeness.push_back(lp::Term{var, 1.0});
        const double usage = static_cast<double>(edge.delay);
        t_rows[t_key(edge.transmitter, tau)].push_back(lp::Term{var, usage});
        r_rows[r_key(edge.receiver, tau)].push_back(lp::Term{var, usage});
      }
    }

    if (auto direct = topology.fixed_link_delay(packet.source, packet.destination)) {
      const std::size_t var = model.add_variable(
          packet.weight * static_cast<double>(*direct), "y_p" + std::to_string(i));
      result.y_index[i] = var;
      completeness.push_back(lp::Term{var, 1.0});
    }

    if (completeness.empty()) {
      throw std::logic_error("packet without any route in the LP");
    }
    model.add_constraint(std::move(completeness), lp::Relation::GreaterEq, 1.0);
  }

  for (auto& row : t_rows) {
    if (!row.empty()) model.add_constraint(std::move(row), lp::Relation::LessEq, budget);
  }
  for (auto& row : r_rows) {
    if (!row.empty()) model.add_constraint(std::move(row), lp::Relation::LessEq, budget);
  }
  return result;
}

DualLp build_dual_lp(const Instance& instance, const PaperLpOptions& options) {
  const Topology& topology = instance.topology();
  DualLp result;
  result.horizon = options.horizon > 0 ? options.horizon
                                       : default_lp_horizon(instance, options.eps);
  const double budget = 1.0 / (2.0 + options.eps);

  lp::Model& model = result.model;
  model.set_maximize(true);

  result.alpha_index.resize(instance.num_packets());
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    result.alpha_index[i] = model.add_variable(1.0, "alpha_p" + std::to_string(i));
  }
  // beta variables are created lazily: only (endpoint, tau) pairs that
  // appear in some constraint can be positive at the optimum anyway.
  result.beta_t_index.assign(static_cast<std::size_t>(topology.num_transmitters()),
                             std::vector<std::size_t>(
                                 static_cast<std::size_t>(result.horizon + 1), kNoVar));
  result.beta_r_index.assign(static_cast<std::size_t>(topology.num_receivers()),
                             std::vector<std::size_t>(
                                 static_cast<std::size_t>(result.horizon + 1), kNoVar));
  auto beta_t = [&](NodeIndex t, Time tau) {
    auto& slot = result.beta_t_index[static_cast<std::size_t>(t)][static_cast<std::size_t>(tau)];
    if (slot == kNoVar) {
      slot = model.add_variable(-budget,
                                "beta_t" + std::to_string(t) + "_" + std::to_string(tau));
    }
    return slot;
  };
  auto beta_r = [&](NodeIndex r, Time tau) {
    auto& slot = result.beta_r_index[static_cast<std::size_t>(r)][static_cast<std::size_t>(tau)];
    if (slot == kNoVar) {
      slot = model.add_variable(-budget,
                                "beta_r" + std::to_string(r) + "_" + std::to_string(tau));
    }
    return slot;
  };

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    for (EdgeIndex e : topology.candidate_edges(packet.source, packet.destination)) {
      const ReconfigEdge& edge = topology.edge(e);
      const double d = static_cast<double>(edge.delay);
      const double total_delay = static_cast<double>(topology.total_edge_delay(e));
      for (Time tau = packet.arrival; tau <= result.horizon; ++tau) {
        std::vector<lp::Term> terms;
        terms.push_back(lp::Term{result.alpha_index[i], 1.0});
        terms.push_back(lp::Term{beta_t(edge.transmitter, tau), -d});
        terms.push_back(lp::Term{beta_r(edge.receiver, tau), -d});
        const double rhs =
            packet.weight * (static_cast<double>(tau - packet.arrival) + total_delay);
        model.add_constraint(std::move(terms), lp::Relation::LessEq, rhs);
      }
    }
    if (auto direct = topology.fixed_link_delay(packet.source, packet.destination)) {
      model.add_constraint({lp::Term{result.alpha_index[i], 1.0}}, lp::Relation::LessEq,
                           packet.weight * static_cast<double>(*direct));
    }
  }
  return result;
}

double lp_opt_lower_bound(const Instance& instance, double eps, Time horizon) {
  PrimalLp primal = build_primal_lp(instance, PaperLpOptions{eps, horizon});
  const lp::Solution solution = lp::solve(primal.model);
  if (solution.status != lp::SolveStatus::Optimal) {
    throw std::runtime_error("primal LP did not solve to optimality (status " +
                             std::to_string(static_cast<int>(solution.status)) + ")");
  }
  return solution.objective;
}

}  // namespace rdcn
