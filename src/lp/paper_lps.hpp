#pragma once

// Builders for the paper's linear programs.
//
// Figure 3 (primal P): variables x_{p,e,tau} (fraction of packet p sent
// over edge e at step tau) and y_p (fraction over the fixed link), with
//   min  sum w_p x_{p,e,tau} (tau + d^(e) - a_p) + sum w_p y_p dl(p)
//   s.t. every packet fully sent; per-(transmitter, tau) and
//        per-(receiver, tau) transmission-time budget 1/(2+eps).
// Its optimum lower-bounds the cost of ANY (preemptive, migratory)
// schedule whose transmission speed is 1/(2+eps) -- the OPT the paper's
// Theorem 1 compares against.
//
// Figure 4 (dual D): variables alpha_p, beta_{t,tau}, beta_{r,tau} with
//   max  sum alpha_p - 1/(2+eps) (sum beta_t + sum beta_r)
//   s.t. alpha_p - d(e)(beta_{t,tau}+beta_{r,tau}) <= w_p (tau + d^(e) - a_p),
//        alpha_p <= w_p dl(p).
// Solving both and checking the objectives coincide machine-checks strong
// duality for the pair (the test-suite does this on random instances).

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "net/instance.hpp"

namespace rdcn {

struct PaperLpOptions {
  double eps = 1.0;   ///< OPT budget is 1/(2+eps) per endpoint per step
  Time horizon = 0;   ///< 0 = derive a horizon that keeps P feasible
};

/// A built primal program plus the variable bookkeeping needed to read a
/// solution back as a schedule.
struct PrimalLp {
  lp::Model model;
  Time horizon = 0;
  /// x-variable metadata, parallel to the LP variable indices in `x_vars`.
  struct XVar {
    PacketIndex packet;
    EdgeIndex edge;
    Time tau;
  };
  std::vector<XVar> x_vars;
  std::vector<std::size_t> x_indices;
  /// y_p variable index per packet (SIZE_MAX when no fixed link exists).
  std::vector<std::size_t> y_index;
};

/// Horizon sufficient for feasibility at budget 1/(2+eps):
/// max arrival + ceil((2+eps) * |Pi| * max d(e)) + 1.
Time default_lp_horizon(const Instance& instance, double eps);

PrimalLp build_primal_lp(const Instance& instance, const PaperLpOptions& options = {});

struct DualLp {
  lp::Model model;
  Time horizon = 0;
  std::vector<std::size_t> alpha_index;                 ///< per packet
  std::vector<std::vector<std::size_t>> beta_t_index;   ///< [t][tau]
  std::vector<std::vector<std::size_t>> beta_r_index;   ///< [r][tau]
};

DualLp build_dual_lp(const Instance& instance, const PaperLpOptions& options = {});

/// Convenience: builds and solves P, returning its optimal value (a lower
/// bound on OPT at budget 1/(2+eps)). Throws if the solver fails.
double lp_opt_lower_bound(const Instance& instance, double eps, Time horizon = 0);

}  // namespace rdcn
