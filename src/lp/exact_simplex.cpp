#include "lp/exact_simplex.hpp"

#include <stdexcept>

namespace rdcn::lp {

std::size_t ExactModel::add_variable(Rational objective_coefficient) {
  objective_.push_back(objective_coefficient);
  return objective_.size() - 1;
}

void ExactModel::add_constraint(std::vector<ExactTerm> terms, ExactRelation relation,
                                Rational rhs) {
  for (const ExactTerm& term : terms) {
    if (term.variable >= objective_.size()) {
      throw std::out_of_range("constraint references unknown variable");
    }
  }
  constraints_.push_back(Constraint{std::move(terms), relation, rhs});
}

bool ExactModel::is_feasible(const std::vector<Rational>& values) const {
  for (const Rational& v : values) {
    if (v.is_negative()) return false;
  }
  for (const Constraint& constraint : constraints_) {
    Rational lhs(0);
    for (const ExactTerm& term : constraint.terms) {
      lhs += term.coefficient * values.at(term.variable);
    }
    switch (constraint.relation) {
      case ExactRelation::LessEq:
        if (lhs > constraint.rhs) return false;
        break;
      case ExactRelation::GreaterEq:
        if (lhs < constraint.rhs) return false;
        break;
      case ExactRelation::Equal:
        if (!(lhs == constraint.rhs)) return false;
        break;
    }
  }
  return true;
}

Rational ExactModel::objective_value(const std::vector<Rational>& values) const {
  Rational total(0);
  for (std::size_t v = 0; v < objective_.size(); ++v) {
    total += objective_[v] * values.at(v);
  }
  return total;
}

namespace {

/// Dense rational tableau, Bland's rule only (termination certain, no
/// tolerances). Mirrors the double solver's structure.
class ExactTableau {
 public:
  explicit ExactTableau(const ExactModel& model) {
    const std::size_t n = model.num_variables();
    const std::size_t m = model.num_constraints();

    struct Row {
      std::vector<Rational> a;
      ExactRelation relation;
      Rational rhs;
    };
    std::vector<Row> rows;
    rows.reserve(m);
    for (const auto& constraint : model.constraints()) {
      Row row;
      row.a.assign(n, Rational(0));
      for (const ExactTerm& term : constraint.terms) {
        row.a[term.variable] += term.coefficient;
      }
      row.relation = constraint.relation;
      row.rhs = constraint.rhs;
      if (row.rhs.is_negative()) {
        for (Rational& coeff : row.a) coeff = -coeff;
        row.rhs = -row.rhs;
        if (row.relation == ExactRelation::LessEq) {
          row.relation = ExactRelation::GreaterEq;
        } else if (row.relation == ExactRelation::GreaterEq) {
          row.relation = ExactRelation::LessEq;
        }
      }
      rows.push_back(std::move(row));
    }

    num_structural_ = n;
    std::size_t num_slack = 0, num_artificial = 0;
    for (const Row& row : rows) {
      if (row.relation != ExactRelation::Equal) ++num_slack;
      if (row.relation != ExactRelation::LessEq) ++num_artificial;
    }
    first_artificial_ = n + num_slack;
    num_columns_ = first_artificial_ + num_artificial;

    a_.assign(m, std::vector<Rational>(num_columns_, Rational(0)));
    b_.assign(m, Rational(0));
    basis_.assign(m, 0);

    std::size_t slack_cursor = n;
    std::size_t artificial_cursor = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) a_[i][j] = rows[i].a[j];
      b_[i] = rows[i].rhs;
      switch (rows[i].relation) {
        case ExactRelation::LessEq:
          a_[i][slack_cursor] = Rational(1);
          basis_[i] = slack_cursor++;
          break;
        case ExactRelation::GreaterEq:
          a_[i][slack_cursor] = Rational(-1);
          ++slack_cursor;
          a_[i][artificial_cursor] = Rational(1);
          basis_[i] = artificial_cursor++;
          break;
        case ExactRelation::Equal:
          a_[i][artificial_cursor] = Rational(1);
          basis_[i] = artificial_cursor++;
          break;
      }
    }

    cost_.assign(num_columns_, Rational(0));
    for (std::size_t j = 0; j < n; ++j) {
      cost_[j] = model.maximize() ? -model.objective()[j] : model.objective()[j];
    }
  }

  ExactStatus run(ExactSolution& solution, bool maximize, std::size_t max_iterations) {
    if (first_artificial_ < num_columns_) {
      reduced_.assign(num_columns_, Rational(0));
      objective_value_ = Rational(0);
      for (std::size_t j = first_artificial_; j < num_columns_; ++j) {
        reduced_[j] = Rational(1);
      }
      for (std::size_t i = 0; i < a_.size(); ++i) {
        if (basis_[i] >= first_artificial_) {
          for (std::size_t j = 0; j < num_columns_; ++j) reduced_[j] -= a_[i][j];
          objective_value_ -= b_[i];
        }
      }
      const ExactStatus phase1 = iterate(solution, true, max_iterations);
      if (phase1 != ExactStatus::Optimal) return phase1;
      if ((-objective_value_) > Rational(0)) return ExactStatus::Infeasible;
      drive_out_artificials();
    }

    reduced_ = cost_;
    objective_value_ = Rational(0);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      const Rational basic_cost = cost_[basis_[i]];
      if (basic_cost.is_zero()) continue;
      for (std::size_t j = 0; j < num_columns_; ++j) {
        reduced_[j] -= basic_cost * a_[i][j];
      }
      objective_value_ -= basic_cost * b_[i];
    }
    const ExactStatus phase2 = iterate(solution, false, max_iterations);
    if (phase2 != ExactStatus::Optimal) return phase2;

    solution.values.assign(num_structural_, Rational(0));
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < num_structural_) solution.values[basis_[i]] = b_[i];
    }
    const Rational min_objective = -objective_value_;
    solution.objective = maximize ? -min_objective : min_objective;
    return ExactStatus::Optimal;
  }

 private:
  void pivot(std::size_t row, std::size_t col) {
    const Rational pivot_value = a_[row][col];
    for (Rational& coeff : a_[row]) coeff /= pivot_value;
    b_[row] /= pivot_value;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (i == row) continue;
      const Rational factor = a_[i][col];
      if (factor.is_zero()) continue;
      for (std::size_t j = 0; j < num_columns_; ++j) {
        a_[i][j] -= factor * a_[row][j];
      }
      b_[i] -= factor * b_[row];
    }
    const Rational reduced_factor = reduced_[col];
    if (!reduced_factor.is_zero()) {
      for (std::size_t j = 0; j < num_columns_; ++j) {
        reduced_[j] -= reduced_factor * a_[row][j];
      }
      objective_value_ -= reduced_factor * b_[row];
    }
    basis_[row] = col;
  }

  ExactStatus iterate(ExactSolution& solution, bool allow_artificial,
                      std::size_t max_iterations) {
    const std::size_t limit = allow_artificial ? num_columns_ : first_artificial_;
    while (true) {
      if (solution.iterations >= max_iterations) return ExactStatus::IterationLimit;

      // Bland: first column with negative reduced cost.
      std::size_t entering = num_columns_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (reduced_[j].is_negative()) {
          entering = j;
          break;
        }
      }
      if (entering == num_columns_) return ExactStatus::Optimal;

      // Bland ratio test: minimal ratio, ties by smallest basis index.
      std::size_t leaving = a_.size();
      Rational best_ratio(0);
      for (std::size_t i = 0; i < a_.size(); ++i) {
        if (!(a_[i][entering] > Rational(0))) continue;
        const Rational ratio = b_[i] / a_[i][entering];
        if (leaving == a_.size() || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
      if (leaving == a_.size()) return ExactStatus::Unbounded;

      pivot(leaving, entering);
      ++solution.iterations;
    }
  }

  void drive_out_artificials() {
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (!a_[i][j].is_zero()) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  std::size_t num_structural_ = 0;
  std::size_t first_artificial_ = 0;
  std::size_t num_columns_ = 0;
  std::vector<std::vector<Rational>> a_;
  std::vector<Rational> b_;
  std::vector<std::size_t> basis_;
  std::vector<Rational> cost_;
  std::vector<Rational> reduced_;
  Rational objective_value_;
};

}  // namespace

ExactSolution solve_exact(const ExactModel& model, std::size_t max_iterations) {
  ExactSolution solution;
  if (model.num_constraints() == 0) {
    solution.values.assign(model.num_variables(), Rational(0));
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      const Rational& c = model.objective()[j];
      if ((model.maximize() && c > Rational(0)) ||
          (!model.maximize() && c.is_negative())) {
        solution.status = ExactStatus::Unbounded;
        return solution;
      }
    }
    solution.status = ExactStatus::Optimal;
    return solution;
  }
  try {
    ExactTableau tableau(model);
    solution.status = tableau.run(solution, model.maximize(), max_iterations);
  } catch (const RationalOverflow&) {
    solution.status = ExactStatus::Overflow;
  }
  return solution;
}

}  // namespace rdcn::lp
