#pragma once

// Exact-rational builder for the paper's primal LP (Figure 3): with
// integer packet weights and rational eps = num/den, every coefficient of
// P is rational (the capacity budget is den/(2*den + num)), so its optimum
// is an exact rational lower bound on OPT. Combined with the exact dual
// witness (core/exact_certificate.hpp) this lets the test-suite verify the
// inequality chain of Lemmas 3-5 with zero floating-point slack.

#include "lp/exact_simplex.hpp"
#include "net/instance.hpp"

namespace rdcn {

struct ExactEps {
  std::int64_t num = 1;
  std::int64_t den = 1;

  Rational value() const { return Rational(num, den); }
  /// 1 / (2 + eps) as an exact rational.
  Rational budget() const { return Rational(den, 2 * den + num); }
};

/// Builds Figure 3's program P with exact coefficients. Requires integer
/// packet weights. horizon = 0 derives the feasibility horizon.
lp::ExactModel build_primal_lp_exact(const Instance& instance, ExactEps eps,
                                     Time horizon = 0);

/// Solves P exactly; throws std::runtime_error unless the solver reaches
/// optimality (including on rational overflow).
Rational exact_lp_opt(const Instance& instance, ExactEps eps, Time horizon = 0);

}  // namespace rdcn
