#include "lp/exact_paper_lp.hpp"

#include <cmath>
#include <stdexcept>

#include "lp/paper_lps.hpp"

namespace rdcn {

namespace {

std::int64_t integer_weight(const Packet& packet) {
  const double rounded = std::floor(packet.weight);
  if (rounded != packet.weight || std::abs(packet.weight) > 1e15) {
    throw std::invalid_argument("exact LP requires integer packet weights");
  }
  return static_cast<std::int64_t>(rounded);
}

}  // namespace

lp::ExactModel build_primal_lp_exact(const Instance& instance, ExactEps eps, Time horizon) {
  if (eps.num <= 0 || eps.den <= 0) throw std::invalid_argument("eps must be positive");
  const Topology& topology = instance.topology();
  if (horizon <= 0) {
    horizon = default_lp_horizon(instance, eps.value().to_double());
  }
  const Rational budget = eps.budget();

  lp::ExactModel model;
  model.set_maximize(false);

  std::vector<std::vector<lp::ExactTerm>> t_rows(
      static_cast<std::size_t>(topology.num_transmitters()) *
      static_cast<std::size_t>(horizon + 1));
  std::vector<std::vector<lp::ExactTerm>> r_rows(
      static_cast<std::size_t>(topology.num_receivers()) *
      static_cast<std::size_t>(horizon + 1));
  const auto key = [horizon](NodeIndex node, Time tau) {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(horizon + 1) +
           static_cast<std::size_t>(tau);
  };

  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const Packet& packet = instance.packets()[i];
    const Rational weight(integer_weight(packet));
    std::vector<lp::ExactTerm> completeness;

    for (EdgeIndex e : topology.candidate_edges(packet.source, packet.destination)) {
      const ReconfigEdge& edge = topology.edge(e);
      const Rational usage(static_cast<std::int64_t>(edge.delay));
      const Rational total_delay(static_cast<std::int64_t>(topology.total_edge_delay(e)));
      for (Time tau = packet.arrival; tau <= horizon; ++tau) {
        const Rational latency =
            weight * (Rational(static_cast<std::int64_t>(tau - packet.arrival)) + total_delay);
        const std::size_t var = model.add_variable(latency);
        completeness.push_back(lp::ExactTerm{var, Rational(1)});
        t_rows[key(edge.transmitter, tau)].push_back(lp::ExactTerm{var, usage});
        r_rows[key(edge.receiver, tau)].push_back(lp::ExactTerm{var, usage});
      }
    }
    if (auto direct = topology.fixed_link_delay(packet.source, packet.destination)) {
      const std::size_t var =
          model.add_variable(weight * Rational(static_cast<std::int64_t>(*direct)));
      completeness.push_back(lp::ExactTerm{var, Rational(1)});
    }
    if (completeness.empty()) throw std::logic_error("packet without any route");
    model.add_constraint(std::move(completeness), lp::ExactRelation::GreaterEq, Rational(1));
  }

  for (auto& row : t_rows) {
    if (!row.empty()) model.add_constraint(std::move(row), lp::ExactRelation::LessEq, budget);
  }
  for (auto& row : r_rows) {
    if (!row.empty()) model.add_constraint(std::move(row), lp::ExactRelation::LessEq, budget);
  }
  return model;
}

Rational exact_lp_opt(const Instance& instance, ExactEps eps, Time horizon) {
  const lp::ExactModel model = build_primal_lp_exact(instance, eps, horizon);
  const lp::ExactSolution solution = lp::solve_exact(model);
  if (solution.status != lp::ExactStatus::Optimal) {
    throw std::runtime_error("exact LP did not reach optimality (status " +
                             std::to_string(static_cast<int>(solution.status)) + ")");
  }
  return solution.objective;
}

}  // namespace rdcn
