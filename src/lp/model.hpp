#pragma once

// A small linear-programming model container: nonnegative variables, a
// linear objective (min or max), and <=, >=, == row constraints. Kept
// deliberately simple -- it only needs to express the paper's programs P
// (Figure 3) and D (Figure 4) and the random LPs of the test-suite.

#include <cstddef>
#include <string>
#include <vector>

namespace rdcn::lp {

enum class Relation { LessEq, GreaterEq, Equal };

struct Term {
  std::size_t variable = 0;
  double coefficient = 0.0;
};

struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::LessEq;
  double rhs = 0.0;
};

class Model {
 public:
  /// Adds a nonnegative variable with the given objective coefficient.
  std::size_t add_variable(double objective_coefficient, std::string name = {});

  void add_constraint(std::vector<Term> terms, Relation relation, double rhs);

  void set_maximize(bool maximize) noexcept { maximize_ = maximize; }
  bool maximize() const noexcept { return maximize_; }

  std::size_t num_variables() const noexcept { return objective_.size(); }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }
  const std::vector<double>& objective() const noexcept { return objective_; }
  const std::vector<Constraint>& constraints() const noexcept { return constraints_; }
  const std::string& variable_name(std::size_t v) const { return names_.at(v); }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(const std::vector<double>& values) const;

  /// Max constraint violation of an assignment (0 when feasible);
  /// includes negativity of variables.
  double max_violation(const std::vector<double>& values) const;

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
  bool maximize_ = false;
};

}  // namespace rdcn::lp
