#pragma once

// Exact LP solving over rational arithmetic: a two-phase tableau simplex
// with Bland's rule (guaranteed termination) and zero tolerances. Used to
// produce CERTIFICATE-GRADE values of the paper's LPs on small instances:
// with integer packet weights and rational eps, the optimum of Figure 3's
// program P -- and hence the lower bound on OPT -- is an exact rational,
// and the dual-witness inequality D/2 <= OPT can be checked with no
// floating-point slack at all.
//
// Rationals can overflow on long pivot chains; the solver reports
// ExactStatus::Overflow in that case (callers fall back to the double
// solver). Intended for the test-suite and small certified runs.

#include <cstddef>
#include <vector>

#include "util/rational.hpp"

namespace rdcn::lp {

enum class ExactRelation { LessEq, GreaterEq, Equal };

struct ExactTerm {
  std::size_t variable = 0;
  Rational coefficient;
};

class ExactModel {
 public:
  std::size_t add_variable(Rational objective_coefficient);
  void add_constraint(std::vector<ExactTerm> terms, ExactRelation relation, Rational rhs);
  void set_maximize(bool maximize) noexcept { maximize_ = maximize; }
  bool maximize() const noexcept { return maximize_; }

  std::size_t num_variables() const noexcept { return objective_.size(); }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }
  const std::vector<Rational>& objective() const noexcept { return objective_; }

  struct Constraint {
    std::vector<ExactTerm> terms;
    ExactRelation relation;
    Rational rhs;
  };
  const std::vector<Constraint>& constraints() const noexcept { return constraints_; }

  /// Exact feasibility check of an assignment.
  bool is_feasible(const std::vector<Rational>& values) const;
  Rational objective_value(const std::vector<Rational>& values) const;

 private:
  std::vector<Rational> objective_;
  std::vector<Constraint> constraints_;
  bool maximize_ = false;
};

enum class ExactStatus { Optimal, Infeasible, Unbounded, IterationLimit, Overflow };

struct ExactSolution {
  ExactStatus status = ExactStatus::IterationLimit;
  Rational objective;
  std::vector<Rational> values;
  std::size_t iterations = 0;
};

ExactSolution solve_exact(const ExactModel& model, std::size_t max_iterations = 100000);

}  // namespace rdcn::lp
