#pragma once

// Per-step engine invariant auditor (the EngineOptions::audit hook).
//
// The auditor shadows a running engine with an independent per-packet
// ledger built from the observed events alone (dispatches, scheduler
// selections, transmitted rounds, retirements) plus the topology. From
// that ledger it re-derives, every step:
//
//  * selection feasibility -- the scheduler's pick is a (b-)matching:
//    indices valid and distinct, no edge twice, per-endpoint load within
//    EngineOptions::endpoint_capacity, every selected chunk genuinely
//    pending;
//  * candidate-list integrity -- the engine's incrementally maintained
//    pending list is sorted by chunk_higher_priority, contains every
//    pending reconfigurable packet exactly once, and each entry's
//    (edge, chunk weight, arrival, remaining) agrees with the ledger;
//  * conservation -- packets dispatched == in flight + retired + dropped,
//    and the engine's in-flight count matches the ledger size;
//  * monotone clocks -- the step clock strictly increases, transmissions
//    never predate arrivals;
//  * completion accounting -- at retirement, the packet's chunk count,
//    transmit steps, completion time and weighted latency equal the values
//    the auditor derived independently (fixed routes included).
//
// Any violation throws AuditFailure with step/packet context. The ledger
// holds O(in-flight) state, so streaming audit runs stay bounded-memory
// like the engine itself.
//
// What the auditor cannot see from inside one run -- batch/stream
// equivalence of per-packet completions, optimality gaps, charging and LP
// bound relations -- lives in check/differential.hpp.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/observer.hpp"

namespace rdcn::check {

class InvariantAuditor final : public EngineObserver {
 public:
  void on_step_begin(const Engine& engine, Time previous_now) override;
  void on_dispatch(const Engine& engine, const Packet& packet,
                   const RouteDecision& route) override;
  void on_selection(const Engine& engine, const std::vector<Candidate>& candidates,
                    const std::vector<std::size_t>& selected) override;
  void on_round(const Engine& engine, const std::vector<Candidate>& candidates,
                const std::vector<std::size_t>& transmitted) override;
  void on_retire(const Engine& engine, PacketIndex packet,
                 const PacketOutcome& outcome) override;
  void on_drop(const Engine& engine, PacketIndex packet,
               const PacketOutcome& outcome) override;
  void on_requeue(const Engine& engine, PacketIndex packet) override;
  void on_step_end(const Engine& engine) override;

  std::uint64_t rounds_audited() const noexcept { return rounds_; }

 private:
  struct Ledger {
    Time arrival = 0;
    Weight weight = 0.0;
    bool use_fixed = false;
    EdgeIndex edge = kInvalidEdge;
    std::int64_t total_chunks = 0;  ///< d(e); 0 for fixed routes
    std::int64_t transmitted = 0;
    Weight chunk_weight = 0.0;
    Time expected_completion = 0;
    double expected_latency = 0.0;
    std::vector<Time> transmit_steps;
    /// A stage mutation killed this packet's edge with no chunk transmitted
    /// and announced a re-dispatch (on_requeue); the next on_dispatch for
    /// the id is the legal second routing, not a double dispatch.
    bool requeue_pending = false;
  };

  [[noreturn]] void fail(const Engine& engine, const std::string& what) const;
  Ledger& entry(const Engine& engine, PacketIndex packet, const char* context);

  std::unordered_map<PacketIndex, Ledger> ledger_;
  PacketIndex next_id_ = 0;  ///< next first-dispatch sequence id
  std::uint64_t dispatched_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t dropped_ = 0;  ///< failure-injection drops (StageMutation)
  std::uint64_t rounds_ = 0;
  bool clock_started_ = false;

  /// Round-scratch for the matching recount, stamped per round so nothing
  /// is re-zeroed (mirrors the engine's trick, but entirely separate
  /// state). picked_round_ carries two stamps per round -- one for the
  /// candidate-integrity pass, one for selection distinctness -- and is
  /// pruned at retirement so it stays O(in-flight) like the ledger.
  std::vector<std::uint64_t> load_t_round_, load_r_round_, edge_round_;
  std::vector<int> load_t_, load_r_;
  std::unordered_map<PacketIndex, std::uint64_t> picked_round_;
};

}  // namespace rdcn::check
