#pragma once

// Failure minimization for the fuzz driver: a failing seed is shrunk to
// the smallest workload that still trips the differential checker, nearby
// seeds are probed (a cluster of failing neighbours usually means a
// systematic bug rather than a numerical edge), and the result is emitted
// as a ready-to-paste gtest case that rebuilds the minimized instance
// deterministically from (seed, prefix length).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/differential.hpp"

namespace rdcn::check {

/// Smallest size in [1, full] that still fails, by bisection; requires
/// fails(full). The invariant "fails(hi)" holds throughout, so the result
/// always genuinely fails -- when failure is non-monotone in size the
/// bisection may settle above the true minimum, never on a passing size.
std::size_t bisect_smallest_failing(std::size_t full,
                                    const std::function<bool(std::size_t)>& fails);

/// Canonical fuzz check for one batch seed: derive random_scenario_spec,
/// build the instance, keep the first `prefix` packets (0 = all), add the
/// spec's randomized engine options as a checker variant, run
/// check_instance. Emitted reproducers call exactly this.
DiffReport check_scenario_seed(std::uint64_t seed, std::size_t prefix = 0,
                               DiffOptions options = {});

/// Canonical fuzz check for one stream seed: derive random_stream_spec and
/// run check_stream. measure != 0 overrides measure_packets, and drops the
/// warmup unless keep_warmup is set (the minimizer's shrinking steps).
DiffReport check_stream_seed(std::uint64_t seed, std::size_t measure = 0,
                             bool keep_warmup = false, DiffOptions options = {});

struct MinimizedRepro {
  std::uint64_t seed = 0;
  bool stream = false;
  /// Minimized size: packet-prefix length (batch) or measured packets
  /// (stream). 0 if the seed stopped failing during re-derivation.
  std::size_t size = 0;
  std::size_t original_size = 0;
  std::vector<std::string> violations;       ///< of the minimized case
  std::vector<std::uint64_t> failing_neighbors;  ///< nearby seeds that also fail
  std::string ctest_case;                    ///< ready-to-paste TEST(...)
  bool still_failing() const noexcept { return !violations.empty(); }
};

/// Bisects the packet prefix of random_scenario_spec(seed)'s instance to
/// the smallest length that still fails check_instance under `options`,
/// probing seeds seed +/- 1..neighbor_radius at full size.
MinimizedRepro minimize_batch_seed(std::uint64_t seed, const DiffOptions& options,
                                   std::uint64_t neighbor_radius = 2);

/// Same for random_stream_spec(seed): drops the warmup, then bisects
/// measure_packets to the smallest count that still fails check_stream.
MinimizedRepro minimize_stream_seed(std::uint64_t seed, const DiffOptions& options,
                                    std::uint64_t neighbor_radius = 2);

}  // namespace rdcn::check
