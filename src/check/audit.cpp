#include "check/audit.hpp"

#include <cmath>
#include <memory>
#include <string>

namespace rdcn {

std::unique_ptr<EngineObserver> make_invariant_auditor() {
  return std::make_unique<check::InvariantAuditor>();
}

}  // namespace rdcn

namespace rdcn::check {

namespace {

/// Latency comparisons: the auditor replays the engine's accumulation with
/// the identical values in the identical order, so the results should be
/// bit-equal; the tolerance only shields against compiler reassociation.
bool close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (1.0 + std::max(std::abs(a), std::abs(b)));
}

}  // namespace

void InvariantAuditor::fail(const Engine& engine, const std::string& what) const {
  throw AuditFailure("[audit] step " + std::to_string(engine.now()) + ": " + what);
}

InvariantAuditor::Ledger& InvariantAuditor::entry(const Engine& engine, PacketIndex packet,
                                                  const char* context) {
  const auto it = ledger_.find(packet);
  if (it == ledger_.end()) {
    fail(engine, std::string(context) + ": packet " + std::to_string(packet) +
                     " is not in flight");
  }
  return it->second;
}

void InvariantAuditor::on_step_begin(const Engine& engine, Time previous_now) {
  if (clock_started_ && engine.now() <= previous_now) {
    fail(engine, "clock did not advance (previous step was " +
                     std::to_string(previous_now) + ")");
  }
  clock_started_ = true;
}

void InvariantAuditor::on_dispatch(const Engine& engine, const Packet& packet,
                                   const RouteDecision& route) {
  const Topology& topology = engine.topology();
  const auto existing = ledger_.find(packet.id);
  if (existing != ledger_.end()) {
    // Only the restricted-migration ablation and a stage mutation's
    // announced requeue may route a packet twice, and only while none of
    // its chunks has transmitted.
    if (!engine.options().redispatch_queued && !existing->second.requeue_pending) {
      fail(engine, "packet " + std::to_string(packet.id) + " dispatched twice");
    }
    if (existing->second.use_fixed || existing->second.transmitted != 0) {
      fail(engine, "packet " + std::to_string(packet.id) +
                       " re-dispatched after transmitting chunks");
    }
  } else {
    if (packet.id != next_id_) {
      fail(engine, "dispatch out of sequence: got packet " + std::to_string(packet.id) +
                       ", expected " + std::to_string(next_id_));
    }
    ++next_id_;
    ++dispatched_;
  }
  if (packet.arrival > engine.now()) {
    fail(engine, "packet " + std::to_string(packet.id) + " dispatched before its arrival");
  }

  Ledger ledger;
  ledger.arrival = packet.arrival;
  ledger.weight = packet.weight;
  if (route.use_fixed) {
    const auto delay = topology.fixed_link_delay(packet.source, packet.destination);
    if (!delay) {
      fail(engine, "packet " + std::to_string(packet.id) +
                       " routed to a fixed link that does not exist");
    }
    ledger.use_fixed = true;
    ledger.expected_completion = std::max(engine.now(), packet.arrival) + *delay;
    ledger.expected_latency =
        packet.weight * static_cast<double>(ledger.expected_completion - packet.arrival);
  } else {
    if (route.edge < 0 || route.edge >= topology.num_edges()) {
      fail(engine, "packet " + std::to_string(packet.id) + " routed to invalid edge " +
                       std::to_string(route.edge));
    }
    const ReconfigEdge& edge = topology.edge(route.edge);
    if (topology.source_of(edge.transmitter) != packet.source ||
        topology.destination_of(edge.receiver) != packet.destination) {
      fail(engine, "packet " + std::to_string(packet.id) + " routed to edge " +
                       std::to_string(route.edge) + " outside its candidate set E_p");
    }
    ledger.edge = route.edge;
    ledger.total_chunks = edge.delay;
    ledger.chunk_weight = packet.weight / static_cast<double>(edge.delay);
  }
  ledger_[packet.id] = std::move(ledger);
}

void InvariantAuditor::on_selection(const Engine& engine,
                                    const std::vector<Candidate>& candidates,
                                    const std::vector<std::size_t>& selected) {
  const Topology& topology = engine.topology();
  ++rounds_;
  // Two distinct stamps per round, so the candidate-integrity pass and the
  // selection-distinctness pass below share picked_round_ without clearing.
  const std::uint64_t round = 2 * rounds_;
  const std::uint64_t pick_round = 2 * rounds_ + 1;
  load_t_round_.resize(static_cast<std::size_t>(topology.num_transmitters()), 0);
  load_r_round_.resize(static_cast<std::size_t>(topology.num_receivers()), 0);
  edge_round_.resize(static_cast<std::size_t>(topology.num_edges()), 0);
  load_t_.resize(load_t_round_.size(), 0);
  load_r_.resize(load_r_round_.size(), 0);

  // Candidate-list integrity: sorted by the chunk priority order, one entry
  // per pending reconfigurable packet, every entry consistent with the
  // ledger. (picked_round_ doubles as the per-round "seen" stamp.)
  std::size_t pending = 0;
  for (const auto& [id, ledger] : ledger_) {
    (void)id;
    if (!ledger.use_fixed && ledger.transmitted < ledger.total_chunks) ++pending;
  }
  if (candidates.size() != pending) {
    fail(engine, "candidate list has " + std::to_string(candidates.size()) +
                     " entries but " + std::to_string(pending) + " packets are pending");
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    if (i + 1 < candidates.size() && chunk_higher_priority(candidates[i + 1], c)) {
      fail(engine, "candidate list is not sorted by chunk priority at index " +
                       std::to_string(i));
    }
    auto& seen = picked_round_[c.packet];
    if (seen == round) {
      fail(engine, "packet " + std::to_string(c.packet) + " appears twice in the "
                   "candidate list");
    }
    seen = round;
    const Ledger& ledger = entry(engine, c.packet, "candidate list");
    if (ledger.use_fixed || c.edge != ledger.edge ||
        c.remaining != ledger.total_chunks - ledger.transmitted ||
        c.arrival != ledger.arrival || c.chunk_weight != ledger.chunk_weight) {
      fail(engine, "candidate for packet " + std::to_string(c.packet) +
                       " disagrees with the dispatch-time ledger");
    }
    const ReconfigEdge& edge = topology.edge(c.edge);
    if (edge.transmitter != c.transmitter || edge.receiver != c.receiver) {
      fail(engine, "candidate for packet " + std::to_string(c.packet) +
                       " carries endpoints that are not edge " + std::to_string(c.edge));
    }
  }

  // Selection feasibility: a (b-)matching over distinct pending chunks.
  const int capacity = engine.options().endpoint_capacity;
  for (const std::size_t index : selected) {
    if (index >= candidates.size()) {
      fail(engine, "scheduler selected out-of-range candidate index " +
                       std::to_string(index));
    }
    const Candidate& c = candidates[index];
    auto& mark = picked_round_[c.packet];
    if (mark == pick_round) {
      fail(engine, "scheduler selected packet " + std::to_string(c.packet) + " twice");
    }
    mark = pick_round;
    const auto e = static_cast<std::size_t>(c.edge);
    const auto t = static_cast<std::size_t>(c.transmitter);
    const auto r = static_cast<std::size_t>(c.receiver);
    if (edge_round_[e] == round) {
      fail(engine, "selection uses edge " + std::to_string(c.edge) + " twice");
    }
    edge_round_[e] = round;
    if (load_t_round_[t] != round) {
      load_t_round_[t] = round;
      load_t_[t] = 0;
    }
    if (load_r_round_[r] != round) {
      load_r_round_[r] = round;
      load_r_[r] = 0;
    }
    if (++load_t_[t] > capacity) {
      fail(engine, "selection loads transmitter " + std::to_string(c.transmitter) +
                       " beyond capacity " + std::to_string(capacity));
    }
    if (++load_r_[r] > capacity) {
      fail(engine, "selection loads receiver " + std::to_string(c.receiver) +
                       " beyond capacity " + std::to_string(capacity));
    }
    if (c.remaining <= 0) {
      fail(engine, "selection transmits packet " + std::to_string(c.packet) +
                       " with no chunks remaining");
    }
  }
}

void InvariantAuditor::on_round(const Engine& engine, const std::vector<Candidate>& candidates,
                                const std::vector<std::size_t>& transmitted) {
  const Topology& topology = engine.topology();
  for (const std::size_t index : transmitted) {
    const Candidate& c = candidates[index];
    Ledger& ledger = entry(engine, c.packet, "transmit");
    if (ledger.transmitted >= ledger.total_chunks) {
      fail(engine, "packet " + std::to_string(c.packet) + " transmitted more chunks than "
                   "its route delay");
    }
    if (engine.now() < ledger.arrival) {
      fail(engine, "packet " + std::to_string(c.packet) + " transmitted before arrival");
    }
    ++ledger.transmitted;
    ledger.transmit_steps.push_back(engine.now());
    const ReconfigEdge& edge = topology.edge(ledger.edge);
    const Time completion = engine.now() + 1 +
                            topology.transmitter_attach_delay(edge.transmitter) +
                            topology.receiver_attach_delay(edge.receiver);
    ledger.expected_latency +=
        ledger.chunk_weight * static_cast<double>(completion - ledger.arrival);
    if (ledger.transmitted == ledger.total_chunks) ledger.expected_completion = completion;
  }
}

void InvariantAuditor::on_retire(const Engine& engine, PacketIndex packet,
                                 const PacketOutcome& outcome) {
  const Ledger& ledger = entry(engine, packet, "retire");
  const std::string who = "packet " + std::to_string(packet);
  if (ledger.use_fixed) {
    if (!outcome.route.use_fixed || !outcome.chunk_transmit_steps.empty()) {
      fail(engine, who + " retired with a route/chunk record inconsistent with its "
                   "fixed dispatch");
    }
  } else {
    if (outcome.route.use_fixed || outcome.route.edge != ledger.edge) {
      fail(engine, who + " retired with a route inconsistent with its dispatch");
    }
    if (ledger.transmitted != ledger.total_chunks) {
      fail(engine, who + " retired with " + std::to_string(ledger.transmitted) + " of " +
                       std::to_string(ledger.total_chunks) + " chunks transmitted");
    }
    if (outcome.chunk_transmit_steps != ledger.transmit_steps) {
      fail(engine, who + " retired with a chunk transmit history that disagrees with "
                   "the observed rounds");
    }
  }
  if (outcome.completion != ledger.expected_completion) {
    fail(engine, who + " completion " + std::to_string(outcome.completion) +
                     " != derived " + std::to_string(ledger.expected_completion));
  }
  if (outcome.completion <= ledger.arrival) {
    fail(engine, who + " completed no later than it arrived");
  }
  if (!close(outcome.weighted_latency, ledger.expected_latency)) {
    fail(engine, who + " weighted latency " + std::to_string(outcome.weighted_latency) +
                     " != derived " + std::to_string(ledger.expected_latency));
  }
  ledger_.erase(packet);
  picked_round_.erase(packet);  // keep the stamp map O(in-flight) too
  ++retired_;
}

void InvariantAuditor::on_drop(const Engine& engine, PacketIndex packet,
                               const PacketOutcome& outcome) {
  const std::string who = "packet " + std::to_string(packet);
  if (!outcome.dropped) fail(engine, who + " dropped without the dropped flag");
  if (outcome.completion != 0) {
    fail(engine, who + " dropped but carries a completion time");
  }
  const auto it = ledger_.find(packet);
  if (it == ledger_.end()) {
    // Arrival-time drop: the pair had no surviving route, so the packet
    // never reached the dispatcher. It still consumes the sequence id and
    // counts as dispatched (the engine creates its window slot).
    if (packet != next_id_) {
      fail(engine, "arrival drop out of sequence: got " + std::to_string(packet) +
                       ", expected " + std::to_string(next_id_));
    }
    ++next_id_;
    ++dispatched_;
    if (!outcome.chunk_transmit_steps.empty() || outcome.weighted_latency != 0.0) {
      fail(engine, who + " dropped at arrival but carries transmit history");
    }
  } else {
    const Ledger& ledger = it->second;
    if (ledger.use_fixed) {
      fail(engine, who + " dropped from the fixed layer (fixed links never die)");
    }
    if (outcome.route.use_fixed || outcome.route.edge != ledger.edge) {
      fail(engine, who + " dropped with a route inconsistent with its dispatch");
    }
    if (ledger.transmitted >= ledger.total_chunks) {
      fail(engine, who + " dropped after transmitting every chunk");
    }
    if (outcome.chunk_transmit_steps != ledger.transmit_steps) {
      fail(engine, who + " dropped with a chunk transmit history that disagrees with "
                   "the observed rounds");
    }
    if (!close(outcome.weighted_latency, ledger.expected_latency)) {
      fail(engine, who + " dropped with weighted latency " +
                       std::to_string(outcome.weighted_latency) + " != derived " +
                       std::to_string(ledger.expected_latency));
    }
    ledger_.erase(it);
    picked_round_.erase(packet);
  }
  ++dropped_;
}

void InvariantAuditor::on_requeue(const Engine& engine, PacketIndex packet) {
  Ledger& ledger = entry(engine, packet, "requeue");
  if (ledger.use_fixed) {
    fail(engine, "packet " + std::to_string(packet) + " requeued off the fixed layer");
  }
  if (ledger.transmitted != 0) {
    fail(engine, "packet " + std::to_string(packet) +
                     " requeued after transmitting chunks");
  }
  ledger.requeue_pending = true;
}

void InvariantAuditor::on_step_end(const Engine& engine) {
  // The scheduling rounds merged every staged dispatch, so the engine's
  // candidate list must now cover exactly the ledger's pending packets --
  // catching candidates silently dropped without retirement (the hook
  // above only fires when the list is nonempty).
  std::size_t pending = 0;
  for (const auto& [id, ledger] : ledger_) {
    (void)id;
    if (!ledger.use_fixed && ledger.transmitted < ledger.total_chunks) ++pending;
  }
  if (engine.pending_candidates().size() != pending) {
    fail(engine, "pending candidate list has " +
                     std::to_string(engine.pending_candidates().size()) + " entries but " +
                     std::to_string(pending) + " packets are pending");
  }
  if (dispatched_ != retired_ + dropped_ + ledger_.size()) {
    fail(engine, "auditor conservation broken: dispatched " + std::to_string(dispatched_) +
                     " != retired " + std::to_string(retired_) + " + dropped " +
                     std::to_string(dropped_) + " + in flight " +
                     std::to_string(ledger_.size()));
  }
  if (engine.packets_dispatched() != dispatched_ || engine.packets_retired() != retired_ ||
      engine.packets_dropped() != dropped_ || engine.in_flight() != ledger_.size()) {
    fail(engine, "engine counters disagree with the audit ledger (dispatched " +
                     std::to_string(engine.packets_dispatched()) + "/" +
                     std::to_string(dispatched_) + ", retired " +
                     std::to_string(engine.packets_retired()) + "/" +
                     std::to_string(retired_) + ", in flight " +
                     std::to_string(engine.in_flight()) + "/" +
                     std::to_string(ledger_.size()) + ")");
  }
}

}  // namespace rdcn::check
