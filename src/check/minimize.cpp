#include "check/minimize.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "run/random.hpp"
#include "run/scenario.hpp"

namespace rdcn::check {

std::size_t bisect_smallest_failing(std::size_t full,
                                    const std::function<bool(std::size_t)>& fails) {
  std::size_t lo = 1, hi = full;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

namespace {

std::string gtest_header(const MinimizedRepro& repro) {
  std::string text = "TEST(DifferentialRegression, ";
  text += repro.stream ? "StreamSeed" : "Seed";
  text += std::to_string(repro.seed);
  text += ") {\n  // Minimized by rdcn_fuzz: seed " + std::to_string(repro.seed) + ", " +
          std::to_string(repro.original_size) + " -> " + std::to_string(repro.size) +
          (repro.stream ? " measured packets" : " packets");
  if (!repro.violations.empty()) text += "; first violation: " + repro.violations.front();
  text += ".\n";
  return text;
}

}  // namespace

DiffReport check_scenario_seed(std::uint64_t seed, std::size_t prefix, DiffOptions options) {
  const ScenarioSpec spec = random_scenario_spec(seed);
  if (spec.engine.speedup_rounds != 1 || spec.engine.endpoint_capacity != 1 ||
      spec.engine.reconfig_delay != 0) {
    options.variants.push_back(spec.engine);  // the randomized extension draw
  }
  Instance instance = ScenarioRunner(spec).instance(spec.base_seed);
  if (prefix > 0) instance = truncate_packets(instance, prefix);
  return check_instance(instance, options);
}

DiffReport check_stream_seed(std::uint64_t seed, std::size_t measure, bool keep_warmup,
                             DiffOptions options) {
  StreamSpec spec = random_stream_spec(seed);
  if (measure > 0) {
    spec.measure_packets = measure;
    if (!keep_warmup) spec.warmup_packets = 0;
  }
  return check_stream(spec, spec.base_seed, options);
}

MinimizedRepro minimize_batch_seed(std::uint64_t seed, const DiffOptions& options,
                                   std::uint64_t neighbor_radius) {
  MinimizedRepro repro;
  repro.seed = seed;
  repro.stream = false;
  repro.original_size = random_scenario_spec(seed).workload.num_packets;

  DiffReport full = check_scenario_seed(seed, 0, options);
  if (full.ok()) {
    repro.violations.clear();
    return repro;  // stopped failing on re-derivation; nothing to shrink
  }
  repro.size = bisect_smallest_failing(repro.original_size, [&](std::size_t prefix) {
    return !check_scenario_seed(seed, prefix, options).ok();
  });
  repro.violations = check_scenario_seed(seed, repro.size, options).violations;

  for (std::uint64_t offset = 1; offset <= neighbor_radius; ++offset) {
    if (seed >= offset && !check_scenario_seed(seed - offset, 0, options).ok()) {
      repro.failing_neighbors.push_back(seed - offset);
    }
    if (!check_scenario_seed(seed + offset, 0, options).ok()) {
      repro.failing_neighbors.push_back(seed + offset);
    }
  }

  repro.ctest_case =
      gtest_header(repro) +
      "  const rdcn::check::DiffReport report =\n"
      "      rdcn::check::check_scenario_seed(" + std::to_string(seed) + "ULL, " +
      std::to_string(repro.size) + ");\n"
      "  EXPECT_TRUE(report.ok()) << report.to_string();\n"
      "}\n";
  return repro;
}

MinimizedRepro minimize_stream_seed(std::uint64_t seed, const DiffOptions& options,
                                    std::uint64_t neighbor_radius) {
  MinimizedRepro repro;
  repro.seed = seed;
  repro.stream = true;
  const StreamSpec spec = random_stream_spec(seed);
  repro.original_size = spec.measure_packets;

  if (check_stream_seed(seed, 0, false, options).ok()) {
    return repro;
  }
  // Shrink the warmup away first (usually irrelevant to the failure), then
  // bisect the measured-packet count.
  const bool keep_warmup =
      check_stream_seed(seed, spec.measure_packets, false, options).ok();
  repro.size =
      bisect_smallest_failing(spec.measure_packets, [&](std::size_t measure) {
        return !check_stream_seed(seed, measure, keep_warmup, options).ok();
      });
  repro.violations = check_stream_seed(seed, repro.size, keep_warmup, options).violations;

  for (std::uint64_t offset = 1; offset <= neighbor_radius; ++offset) {
    if (seed >= offset && !check_stream_seed(seed - offset, 0, false, options).ok()) {
      repro.failing_neighbors.push_back(seed - offset);
    }
    if (!check_stream_seed(seed + offset, 0, false, options).ok()) {
      repro.failing_neighbors.push_back(seed + offset);
    }
  }

  repro.ctest_case =
      gtest_header(repro) +
      "  const rdcn::check::DiffReport report =\n"
      "      rdcn::check::check_stream_seed(" + std::to_string(seed) + "ULL, " +
      std::to_string(repro.size) + ", " + (keep_warmup ? "true" : "false") + ");\n"
      "  EXPECT_TRUE(report.ok()) << report.to_string();\n"
      "}\n";
  return repro;
}

}  // namespace rdcn::check
