#include "check/differential.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "core/alg.hpp"
#include "core/charging.hpp"
#include "core/impact.hpp"
#include "core/dual_witness.hpp"
#include "opt/lower_bounds.hpp"
#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "sim/metrics.hpp"
#include "traffic/source.hpp"

namespace rdcn::check {

namespace {

/// Tolerance scaled to the magnitudes compared (costs grow with instance
/// size; the oracles recompute them through different arithmetic orders).
bool leq(double a, double b, double tol) {
  return a <= b + tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

std::vector<std::string> policy_list(const DiffOptions& options) {
  return options.policies.empty() ? policy_names() : options.policies;
}

EngineOptions streamable(const Instance& instance, EngineOptions options) {
  options.record_trace = false;
  options.redispatch_queued = false;
  // Keep the batch run's starvation guard: a streaming-mode engine bug
  // that strands a candidate must surface as a thrown violation, not hang
  // the drive loop (with 0 the guard is disabled).
  options.max_steps = default_max_steps(instance, options.reconfig_delay);
  return options;
}

/// Drives a streaming engine over the instance's recorded arrivals and
/// compares every aggregate and per-packet outcome against the batch run.
/// Returns human-readable mismatch descriptions (empty = bit-for-bit);
/// a throw from the streamed replay (audit, engine guard) is itself a
/// mismatch, never an escape.
std::vector<std::string> compare_batch_vs_stream(const Instance& instance,
                                                 const PolicyFactory& policy,
                                                 const EngineOptions& options,
                                                 const RunResult& batch) {
  std::vector<std::string> mismatches;
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  std::vector<RetiredPacket> retired(instance.num_packets());
  std::vector<bool> seen(instance.num_packets(), false);
  Engine engine(instance.topology(), *dispatcher, *scheduler,
                streamable(instance, options),
                [&](RetiredPacket&& packet) {
                  const auto index = static_cast<std::size_t>(packet.id);
                  if (index >= seen.size() || seen[index]) {
                    mismatches.push_back("stream retired unexpected packet " +
                                         std::to_string(packet.id));
                    return;
                  }
                  seen[index] = true;
                  retired[index] = std::move(packet);
                });
  const auto& packets = instance.packets();
  std::size_t next = 0;
  try {
    while (next < packets.size() || engine.busy()) {
      const Time* upcoming = next < packets.size() ? &packets[next].arrival : nullptr;
      engine.begin_step(upcoming);
      while (next < packets.size() && packets[next].arrival == engine.now()) {
        engine.inject(packets[next]);
        ++next;
      }
      engine.finish_step();
    }
  } catch (const std::exception& error) {
    mismatches.push_back(std::string("streamed replay threw: ") + error.what());
    return mismatches;
  }

  const RunResult& aggregates = engine.aggregates();
  if (aggregates.total_cost != batch.total_cost ||
      aggregates.reconfig_cost != batch.reconfig_cost ||
      aggregates.fixed_cost != batch.fixed_cost || aggregates.makespan != batch.makespan ||
      aggregates.steps_simulated != batch.steps_simulated) {
    mismatches.push_back("stream aggregates diverge from batch (cost " +
                         std::to_string(aggregates.total_cost) + " vs " +
                         std::to_string(batch.total_cost) + ")");
  }
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    if (!seen[i]) {
      mismatches.push_back("packet " + std::to_string(i) + " never retired streaming");
      continue;
    }
    const PacketOutcome& want = batch.outcomes[i];
    const PacketOutcome& got = retired[i].outcome;
    if (got.route.use_fixed != want.route.use_fixed || got.route.edge != want.route.edge ||
        got.completion != want.completion ||
        got.weighted_latency != want.weighted_latency ||
        got.chunk_transmit_steps != want.chunk_transmit_steps) {
      mismatches.push_back("packet " + std::to_string(i) +
                           " outcome diverges between batch and stream (completion " +
                           std::to_string(want.completion) + " vs " +
                           std::to_string(got.completion) + ")");
    }
  }
  return mismatches;
}

/// A staged spec's arrival prefix and mutation schedule, reconstructed
/// exactly as StreamRunner's staged drive derives them: one source per
/// stage (seed mixed per stage index, traffic overrides applied, speedup
/// tracking the engine's post-mutation options), arrivals rebased to the
/// stage clock, draws past the stage end discarded, ids renumbered
/// globally. The prefix is finite, so batch and stream replays of it
/// share a horizon.
struct StagedReplay {
  std::vector<Packet> arrivals;
  std::vector<TimedMutation> schedule;
};

StagedReplay build_staged_replay(const StreamSpec& spec, const Topology& topology,
                                 std::uint64_t rep_seed, std::size_t max_packets) {
  StagedReplay replay;
  std::vector<Time> start(spec.stages.size());
  Time t = 1;
  for (std::size_t k = 0; k < spec.stages.size(); ++k) {
    start[k] = t;
    t += spec.stages[k].duration;
  }
  int speedup = spec.engine.speedup_rounds;
  PacketIndex next_id = 0;
  for (std::size_t k = 0; k < spec.stages.size(); ++k) {
    const StageSpec& stage = spec.stages[k];
    if (stage.mutation.speedup_rounds > 0) speedup = stage.mutation.speedup_rounds;
    replay.schedule.push_back({start[k], stage.mutation});
    TrafficConfig traffic = spec.traffic;
    traffic.shape.seed =
        rep_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(k));
    traffic.speedup_rounds = speedup;
    if (stage.rho > 0.0) traffic.rho = stage.rho;
    if (stage.on_stay > 0.0) traffic.on_stay = stage.on_stay;
    if (stage.off_stay > 0.0) traffic.off_stay = stage.off_stay;
    const auto source = make_source(topology, traffic);
    const bool bounded = k + 1 < spec.stages.size();
    while (replay.arrivals.size() < max_packets) {
      std::optional<Packet> packet = source->next();
      if (!packet) break;
      packet->arrival += start[k] - 1;
      // Arrivals are non-decreasing, so the first draw past the stage end
      // ends the stage (the streamed drive discards it at stage entry).
      if (bounded && packet->arrival > start[k + 1] - 1) break;
      packet->id = next_id++;
      replay.arrivals.push_back(*packet);
    }
    if (replay.arrivals.size() >= max_packets) break;
  }
  return replay;
}

/// Batch-vs-stream equivalence of a staged replay: Engine::run(schedule)
/// against a streaming drive that applies the same mutations at the same
/// step boundaries. Every aggregate, drop/requeue counter, and per-packet
/// outcome (dropped flag included) must agree bit for bit.
std::vector<std::string> compare_staged_batch_vs_stream(
    const Instance& instance, const std::vector<TimedMutation>& schedule,
    const PolicyFactory& policy, const EngineOptions& options, const RunResult& batch,
    std::uint64_t batch_dropped, std::uint64_t batch_requeued) {
  std::vector<std::string> mismatches;
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  std::vector<RetiredPacket> retired(instance.num_packets());
  std::vector<bool> seen(instance.num_packets(), false);
  Engine engine(instance.topology(), *dispatcher, *scheduler,
                streamable(instance, options),
                [&](RetiredPacket&& packet) {
                  const auto index = static_cast<std::size_t>(packet.id);
                  if (index >= seen.size() || seen[index]) {
                    mismatches.push_back("stream retired unexpected packet " +
                                         std::to_string(packet.id));
                    return;
                  }
                  seen[index] = true;
                  retired[index] = std::move(packet);
                });
  const auto& packets = instance.packets();
  std::size_t next = 0;
  std::size_t next_mutation = 0;
  try {
    while (next < packets.size() || engine.busy()) {
      while (next_mutation < schedule.size() &&
             schedule[next_mutation].at <= engine.now() + 1) {
        engine.apply_mutation(schedule[next_mutation].mutation);
        ++next_mutation;
      }
      // A mutation can drain the last in-flight packet (drop); mirror
      // Engine::run(schedule), which re-checks for work before stepping.
      if (next >= packets.size() && !engine.busy()) break;
      const Time* upcoming = next < packets.size() ? &packets[next].arrival : nullptr;
      Time stage_bound = 0;
      if (next_mutation < schedule.size()) {
        stage_bound = schedule[next_mutation].at - 1;
        if (upcoming == nullptr || stage_bound < *upcoming) upcoming = &stage_bound;
      }
      engine.begin_step(upcoming);
      while (next < packets.size() && packets[next].arrival == engine.now()) {
        engine.inject(packets[next]);
        ++next;
      }
      engine.finish_step();
    }
  } catch (const std::exception& error) {
    mismatches.push_back(std::string("staged streamed replay threw: ") + error.what());
    return mismatches;
  }

  const RunResult& aggregates = engine.aggregates();
  if (aggregates.total_cost != batch.total_cost || aggregates.makespan != batch.makespan ||
      aggregates.steps_simulated != batch.steps_simulated) {
    mismatches.push_back("staged stream aggregates diverge from batch (cost " +
                         std::to_string(aggregates.total_cost) + " vs " +
                         std::to_string(batch.total_cost) + ")");
  }
  if (engine.packets_dropped() != batch_dropped ||
      engine.packets_requeued() != batch_requeued) {
    mismatches.push_back(
        "staged stream drop/requeue counters diverge from batch (" +
        std::to_string(engine.packets_dropped()) + "/" +
        std::to_string(engine.packets_requeued()) + " vs " +
        std::to_string(batch_dropped) + "/" + std::to_string(batch_requeued) + ")");
  }
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    if (!seen[i]) {
      mismatches.push_back("packet " + std::to_string(i) +
                           " never retired or dropped streaming");
      continue;
    }
    const PacketOutcome& want = batch.outcomes[i];
    const PacketOutcome& got = retired[i].outcome;
    if (got.dropped != want.dropped || got.route.use_fixed != want.route.use_fixed ||
        got.route.edge != want.route.edge || got.completion != want.completion ||
        got.weighted_latency != want.weighted_latency ||
        got.chunk_transmit_steps != want.chunk_transmit_steps) {
      mismatches.push_back("packet " + std::to_string(i) +
                           " outcome diverges between staged batch and stream "
                           "(completion " + std::to_string(want.completion) + " vs " +
                           std::to_string(got.completion) + ")");
    }
  }
  return mismatches;
}

/// One policy's audited batch run plus the self-consistency and stream
/// equivalence checks shared by the standard and variant passes. Returns
/// the run's cost, or nothing if the engine threw.
std::optional<double> run_and_check(const Instance& instance, const std::string& name,
                                    const EngineOptions& engine_options,
                                    const DiffOptions& options, const char* label,
                                    DiffReport& report) {
  const PolicyFactory policy = named_policy(name);
  RunResult run;
  try {
    auto dispatcher = policy.dispatcher();
    auto scheduler = policy.scheduler(instance.topology());
    run = simulate(instance, *dispatcher, *scheduler, engine_options);
  } catch (const std::exception& error) {
    report.violations.push_back(std::string(label) + name + ": engine threw: " +
                                error.what());
    return std::nullopt;
  }
  ++report.checks;
  if (!all_delivered(instance, run)) {
    report.violations.push_back(std::string(label) + name + ": not every packet delivered");
  }
  const double tol = options.tolerance;
  if (!close(recompute_cost(instance, run), run.total_cost, tol)) {
    report.violations.push_back(std::string(label) + name +
                                ": engine cost != per-chunk recomputation");
  }
  if (!close(recompute_cost_active_form(instance, run), run.total_cost, tol)) {
    report.violations.push_back(std::string(label) + name +
                                ": engine cost != active-form recomputation");
  }
  if (!close(run.reconfig_cost + run.fixed_cost, run.total_cost, tol)) {
    report.violations.push_back(std::string(label) + name +
                                ": reconfig + fixed cost shares do not sum to the total");
  }
  if (options.check_stream_equivalence && !engine_options.redispatch_queued) {
    ++report.checks;
    for (std::string& mismatch :
         compare_batch_vs_stream(instance, policy, engine_options, run)) {
      report.violations.push_back(std::string(label) + name + ": " + std::move(mismatch));
    }
  }
  return run.total_cost;
}

/// Dispatcher replicating ImpactDispatcher's decision rule while, for
/// every candidate edge it evaluates, cross-validating the engine's
/// incremental impact index against both oracles:
///
///  * the naive queue scan (impact_of_scan): base and h_count must match
///    EXACTLY (integer / identical arithmetic); l_weight and delta to a
///    tight relative tolerance scaled by the endpoint weight mass (the
///    two sides sum the same terms in different associations, and the
///    (t + r) - pair combination can cancel);
///  * a fresh ImpactAggregate per endpoint, rebuilt from the engine's
///    queues in queue order and combined through combine_impact: must
///    match the live index BIT FOR BIT (canonical shape makes the sums a
///    pure function of the pending multiset);
///  * the index's O(1) integer edge load against a scan of the queues
///    (JSQ's signal): exact.
///
/// The run it drives is therefore ALG's run; the checks are pure readers.
class CrossCheckedImpactDispatcher final : public DispatchPolicy {
 public:
  explicit CrossCheckedImpactDispatcher(DiffReport& report) : report_(&report) {}

  std::size_t checked_edges() const noexcept { return checked_; }

  RouteDecision dispatch(const Engine& engine, const Packet& packet) override {
    const Topology& topology = engine.topology();
    engine.viable_edges_into(packet.source, packet.destination, edges_);

    double best_delta = std::numeric_limits<double>::infinity();
    EdgeIndex best_edge = kInvalidEdge;
    for (EdgeIndex e : edges_) {
      const ImpactBreakdown indexed = impact_of(engine, packet, e);
      verify_edge(engine, packet, e, indexed);
      if (indexed.delta < best_delta) {  // ties keep the lowest edge index
        best_delta = indexed.delta;
        best_edge = e;
      }
    }

    const auto direct = topology.fixed_link_delay(packet.source, packet.destination);
    RouteDecision decision;
    if (best_edge == kInvalidEdge) {
      if (!direct) throw std::logic_error("packet has no route");
      decision.use_fixed = true;
      decision.alpha = packet.weight * static_cast<double>(*direct);
      return decision;
    }
    if (direct && packet.weight * static_cast<double>(*direct) <= best_delta) {
      decision.use_fixed = true;
      decision.alpha = packet.weight * static_cast<double>(*direct);
      return decision;
    }
    decision.use_fixed = false;
    decision.edge = best_edge;
    decision.alpha = best_delta;
    return decision;
  }

 private:
  static constexpr std::size_t kMaxReported = 8;  ///< don't flood the report

  void violation(std::string message) {
    if (report_->violations.size() < kMaxReported) {
      report_->violations.push_back(std::move(message));
    }
  }

  void verify_edge(const Engine& engine, const Packet& packet, EdgeIndex e,
                   const ImpactBreakdown& indexed) {
    ++checked_;
    const Topology& topology = engine.topology();
    const ReconfigEdge& edge = topology.edge(e);
    const double threshold =
        packet.weight / static_cast<double>(edge.delay);
    const std::string where = "impact index, packet " + std::to_string(packet.id) +
                              " edge " + std::to_string(e) + ": ";

    // Oracle 1: the naive queue scan.
    const ImpactBreakdown scan = impact_of_scan(engine, packet, e);
    if (indexed.base != scan.base || indexed.h_count != scan.h_count) {
      violation(where + "index (h " + std::to_string(indexed.h_count) + ") != scan (h " +
                std::to_string(scan.h_count) + ") on the exact fields");
    }

    // Oracle 2: fresh canonical-shape aggregates from the queues, plus the
    // exact integer load scan. The pair aggregate holds the packets both
    // queues list -- those assigned to a parallel edge of e's (t, r) pair.
    t_agg_.clear();
    r_agg_.clear();
    p_agg_.clear();
    std::int64_t scan_load = 0;
    for (PacketIndex q : engine.pending_on_transmitter(edge.transmitter)) {
      t_agg_.add(engine.chunk_weight(q), engine.remaining_chunks(q));
      scan_load += engine.remaining_chunks(q);
    }
    for (PacketIndex q : engine.pending_on_receiver(edge.receiver)) {
      r_agg_.add(engine.chunk_weight(q), engine.remaining_chunks(q));
      if (engine.assigned_transmitter(q) == edge.transmitter) {
        p_agg_.add(engine.chunk_weight(q), engine.remaining_chunks(q));
      } else {
        scan_load += engine.remaining_chunks(q);
      }
    }
    const WeightBelow t_below = t_agg_.below(threshold);
    const WeightBelow r_below = r_agg_.below(threshold);
    const ImpactSplit fresh = combine_impact(t_agg_.chunks(), t_below, r_agg_.chunks(),
                                             r_below, p_agg_.chunks(),
                                             p_agg_.below(threshold));
    const ImpactSplit live = engine.impact_split(e, threshold);
    if (live.heavier != fresh.heavier || live.lighter_weight != fresh.lighter_weight) {
      violation(where + "live index != fresh canonical rebuild bit-for-bit (lighter " +
                std::to_string(live.lighter_weight) + " vs " +
                std::to_string(fresh.lighter_weight) + ")");
    }
    if (engine.impact_index().edge_load(e) != scan_load) {
      violation(where + "index edge load " +
                std::to_string(engine.impact_index().edge_load(e)) + " != queue scan " +
                std::to_string(scan_load));
    }

    // Scan-vs-index l_weight/delta: same terms, different association; the
    // scale is the weight mass the two sides summed, not the (possibly
    // cancelled) result.
    const double scale = 1.0 + t_below.weight + r_below.weight;
    if (std::abs(indexed.l_weight - scan.l_weight) > 1e-9 * scale) {
      violation(where + "index l_weight " + std::to_string(indexed.l_weight) +
                " strays from scan " + std::to_string(scan.l_weight));
    }
    const double d = static_cast<double>(edge.delay);
    if (std::abs(indexed.delta - scan.delta) > 1e-9 * (1.0 + std::abs(scan.base)) +
                                                   1e-9 * d * scale +
                                                   1e-9 * std::abs(packet.weight) *
                                                       static_cast<double>(scan.h_count)) {
      violation(where + "index delta " + std::to_string(indexed.delta) +
                " strays from scan " + std::to_string(scan.delta));
    }
  }

  DiffReport* report_;
  std::size_t checked_ = 0;
  std::vector<EdgeIndex> edges_;
  ImpactAggregate t_agg_, r_agg_, p_agg_;
};

}  // namespace

void check_impact_index(const Instance& instance, DiffReport& report) {
  ++report.checks;
  CrossCheckedImpactDispatcher dispatcher(report);
  try {
    StableMatchingScheduler scheduler;
    EngineOptions options;
    options.audit = false;  // pure reader pass; the audited run already ran
    simulate(instance, dispatcher, scheduler, options);
  } catch (const std::exception& error) {
    report.violations.push_back(std::string("impact index replay threw: ") + error.what());
    return;
  }
  if (dispatcher.checked_edges() == 0 && instance.num_packets() > 0) {
    // Not a bug by itself (all-fixed instances have no candidate edges),
    // but worth surfacing to the fuzz statistics.
    report.skipped.push_back("impact index cross-check saw no candidate edges");
  }
}

std::string DiffReport::to_string() const {
  std::string joined;
  for (const std::string& violation : violations) {
    if (!joined.empty()) joined += "\n";
    joined += violation;
  }
  return joined.empty() ? "no violations" : joined;
}

Instance truncate_packets(const Instance& instance, std::size_t keep) {
  const auto& packets = instance.packets();
  Instance truncated(instance.topology(), std::vector<Packet>(
                                              packets.begin(),
                                              packets.begin() + static_cast<std::ptrdiff_t>(
                                                                    std::min(keep, packets.size()))));
  return truncated;
}

DiffReport check_instance(const Instance& instance, const DiffOptions& options) {
  DiffReport report;
  ++report.checks;
  const std::string invalid = instance.validate();
  if (!invalid.empty()) {
    report.violations.push_back("instance invalid: " + invalid);
    return report;
  }

  EngineOptions base;
  base.audit = options.audit;
  const std::vector<std::string> names = policy_list(options);
  std::vector<std::pair<std::string, double>> costs;
  for (const std::string& name : names) {
    if (const auto cost = run_and_check(instance, name, base, options, "", report)) {
      costs.emplace_back(name, *cost);
    }
  }
  for (const EngineOptions& variant : options.variants) {
    EngineOptions audited = variant;
    audited.audit = options.audit;
    const std::string label = "variant(speedup " + std::to_string(variant.speedup_rounds) +
                              ", capacity " + std::to_string(variant.endpoint_capacity) +
                              ", reconfig " + std::to_string(variant.reconfig_delay) + ") ";
    for (const std::string& name : options.variant_policies) {
      run_and_check(instance, name, audited, options, label.c_str(), report);
    }
  }

  // Bound relations (valid in the unit-speed analysis model the base runs
  // use): no schedule beats the trivial bound or the exhaustive optimum.
  const double tol = options.tolerance;
  const double ideal = instance.ideal_cost();
  ++report.checks;
  for (const auto& [name, cost] : costs) {
    if (!leq(ideal, cost, tol)) {
      report.violations.push_back(name + ": cost " + std::to_string(cost) +
                                  " beats the trivial lower bound " + std::to_string(ideal));
    }
  }
  if (instance.num_packets() <= options.brute_force.max_packets) {
    if (const auto optimum = brute_force_opt(instance, options.brute_force)) {
      ++report.checks;
      for (const auto& [name, cost] : costs) {
        if (!leq(optimum->cost, cost, tol)) {
          report.violations.push_back(name + ": cost " + std::to_string(cost) +
                                      " beats the exhaustive optimum " +
                                      std::to_string(optimum->cost));
        }
      }
      if (!leq(ideal, optimum->cost, tol)) {
        report.violations.push_back("trivial bound " + std::to_string(ideal) +
                                    " exceeds the exhaustive optimum " +
                                    std::to_string(optimum->cost));
      }
    } else {
      report.skipped.push_back("brute force hit its search limits");
    }
  }

  // ALG's analysis certificates: charging scheme, dual witness, LP bound.
  if (std::find(names.begin(), names.end(), "alg") != names.end()) {
    check_impact_index(instance, report);
    try {
      EngineOptions traced;
      traced.record_trace = true;
      traced.audit = options.audit;
      const PolicyFactory alg = alg_policy();
      auto dispatcher = alg.dispatcher();
      auto scheduler = alg.scheduler(instance.topology());
      const RunResult run = simulate(instance, *dispatcher, *scheduler, traced);

      ++report.checks;
      const ChargingAudit charging = audit_charging(instance, run);
      if (charging.max_overcharge > tol * (1.0 + std::abs(run.total_cost))) {
        report.violations.push_back("charging: a packet is charged beyond its alpha "
                                    "(Lemma 2 violated by " +
                                    std::to_string(charging.max_overcharge) + ")");
      }
      if (charging.cover_gap > tol * (1.0 + std::abs(run.total_cost))) {
        report.violations.push_back("charging: charges do not partition ALG's cost (gap " +
                                    std::to_string(charging.cover_gap) + ")");
      }
      if (instance.has_integer_weights()) {
        ++report.checks;
        const ExactChargingAudit exact = audit_charging_exact(instance, run);
        if (!exact.charges_cover_cost) {
          report.violations.push_back("charging: exact rational charges miss the cost");
        }
        if (!exact.within_alpha) {
          report.violations.push_back("charging: exact rational charge exceeds alpha");
        }
      }

      ++report.checks;
      const DualWitness witness = build_dual_witness(instance, run);
      if (!check_dual_feasibility(instance, witness).halved_feasible) {
        report.violations.push_back("dual witness: halved witness infeasible (Lemma 4/5)");
      }
      if (lemma1_gap(witness, run) > tol * (1.0 + std::abs(run.total_cost))) {
        report.violations.push_back("dual witness: Lemma 1 beta/cost balance broken");
      }

      LowerBoundOptions bound_options;
      bound_options.eps = options.eps;
      bound_options.max_lp_variables = options.max_lp_variables;
      const LowerBounds bounds = compute_lower_bounds(instance, bound_options);
      ++report.checks;
      if (bounds.lp_bound && !leq(bounds.dual_witness_bound, *bounds.lp_bound, tol)) {
        report.violations.push_back(
            "weak duality broken: dual witness bound " +
            std::to_string(bounds.dual_witness_bound) + " exceeds the LP optimum " +
            std::to_string(*bounds.lp_bound));
      }
    } catch (const std::exception& error) {
      report.violations.push_back(std::string("certificate pipeline threw: ") +
                                  error.what());
    }
  }
  return report;
}

DiffReport check_stream(const StreamSpec& spec, std::uint64_t rep_seed,
                        const DiffOptions& options) {
  DiffReport report;
  StreamSpec audited = spec;
  audited.engine.audit = options.audit;

  std::unique_ptr<StreamRunner> runner;
  try {
    runner = std::make_unique<StreamRunner>(audited);
  } catch (const std::invalid_argument& error) {
    report.skipped.push_back(std::string("stream spec rejected: ") + error.what());
    return report;
  }

  const double tol = options.tolerance;
  bool calibrated = true;
  for (const std::string& name : policy_list(options)) {
    const PolicyFactory policy = named_policy(name);
    StreamRepOutcome out;
    try {
      out = runner->run_repetition(policy, rep_seed);
    } catch (const std::invalid_argument& error) {
      // Spec-level rejection (e.g. rho calibration refusing a shape whose
      // pairs mostly never touch the reconfigurable layer) -- same for
      // every policy, so note it once and stop.
      report.skipped.push_back(std::string("stream spec rejected: ") + error.what());
      calibrated = false;
      break;
    } catch (const std::exception& error) {
      report.violations.push_back(name + ": stream run threw: " + error.what());
      continue;
    }
    ++report.checks;
    if (out.latency.count() != out.measured) {
      report.violations.push_back(name + ": histogram holds " +
                                  std::to_string(out.latency.count()) + " samples for " +
                                  std::to_string(out.measured) + " measured packets");
    }
    if (out.measured > out.served || out.served > out.offered) {
      report.violations.push_back(name + ": measured/served/offered not nested (" +
                                  std::to_string(out.measured) + "/" +
                                  std::to_string(out.served) + "/" +
                                  std::to_string(out.offered) + ")");
    }
    // Staged runs retire the measure range as completions plus failure
    // drops (ids are counted once either way); unstaged runs never drop,
    // so this is the historical measured == measure_packets check there.
    if (!spec.make_trace && !out.truncated &&
        out.measured + out.dropped_measured != spec.measure_packets) {
      report.violations.push_back(name + ": un-truncated run measured " +
                                  std::to_string(out.measured) + " + dropped " +
                                  std::to_string(out.dropped_measured) + " of " +
                                  std::to_string(spec.measure_packets) + " packets");
    }
    if (out.steps > 0 &&
        !close(out.throughput,
               static_cast<double>(out.served) / static_cast<double>(out.steps), tol)) {
      report.violations.push_back(name + ": throughput != served / steps");
    }
    if (out.measured > 0 && !close(out.mean_latency, out.latency.mean(), tol)) {
      report.violations.push_back(name + ": mean latency disagrees with the histogram");
    }
    if (out.measured > 0 && out.latency.min() < 1) {
      report.violations.push_back(name + ": a measured packet completed in < 1 step");
    }
    if (out.zero_demand > out.offered) {
      report.violations.push_back(name + ": zero-demand count exceeds offered packets");
    }
    std::uint64_t window_arrivals = 0, window_served = 0;
    Time window_steps = 0;
    for (const StreamWindow& window : out.series) {
      window_arrivals += window.arrivals;
      window_served += window.served;
      window_steps += window.steps;
    }
    if (window_arrivals != out.offered || window_served != out.served ||
        window_steps != out.steps) {
      report.violations.push_back(name + ": telemetry series totals disagree with the "
                                  "run (arrivals " + std::to_string(window_arrivals) +
                                  "/" + std::to_string(out.offered) + ", served " +
                                  std::to_string(window_served) + "/" +
                                  std::to_string(out.served) + ", steps " +
                                  std::to_string(window_steps) + "/" +
                                  std::to_string(out.steps) + ")");
    }
    if (!spec.stages.empty()) {
      ++report.checks;
      if (out.served + out.dropped > out.offered) {
        report.violations.push_back(name + ": served + dropped exceeds offered (" +
                                    std::to_string(out.served) + " + " +
                                    std::to_string(out.dropped) + " > " +
                                    std::to_string(out.offered) + ")");
      }
      if (out.dropped_measured > out.dropped) {
        report.violations.push_back(name + ": measured drops exceed total drops");
      }
      std::uint64_t stage_offered = 0, stage_served = 0, stage_dropped = 0;
      for (const StageOutcome& stage : out.stages) {
        stage_offered += stage.offered;
        stage_served += stage.served;
        stage_dropped += stage.dropped;
        if (stage.drain_steps < -1) {
          report.violations.push_back(name + ": negative stage drain time");
        }
      }
      // Every event is attributed to exactly one stage.
      if (stage_offered != out.offered || stage_served != out.served ||
          stage_dropped != out.dropped) {
        report.violations.push_back(
            name + ": stage attribution does not cover the run (offered " +
            std::to_string(stage_offered) + "/" + std::to_string(out.offered) +
            ", served " + std::to_string(stage_served) + "/" +
            std::to_string(out.served) + ", dropped " + std::to_string(stage_dropped) +
            "/" + std::to_string(out.dropped) + ")");
      }
      // Bit-for-bit determinism in (spec, seed): the staged drive's stage
      // re-seeding, mutation clocking and drop bookkeeping must replay
      // identically.
      ++report.checks;
      const StreamRepOutcome again = runner->run_repetition(policy, rep_seed);
      if (again.offered != out.offered || again.served != out.served ||
          again.dropped != out.dropped || again.requeued != out.requeued ||
          again.measured != out.measured || again.steps != out.steps ||
          again.total_cost != out.total_cost ||
          again.latency.count() != out.latency.count() ||
          again.latency.mean() != out.latency.mean()) {
        report.violations.push_back(name + ": staged repetition is not deterministic "
                                    "(cost " + std::to_string(out.total_cost) + " vs " +
                                    std::to_string(again.total_cost) + ")");
      }
    }
  }

  // Staged specs: reconstruct the staged arrival prefix plus mutation
  // schedule and compare Engine::run(schedule) against a streaming drive
  // applying the identical mutations -- per-packet outcomes, drop/requeue
  // counters and aggregates must agree bit-for-bit.
  if (calibrated && options.check_stream_equivalence && !spec.make_trace &&
      !spec.stages.empty()) {
    try {
      const Topology topology = make_topology(spec.topology, rep_seed);
      const StagedReplay replay = build_staged_replay(
          spec, topology, rep_seed,
          std::min(spec.warmup_packets + spec.measure_packets,
                   options.stream_replay_packets));
      if (!replay.arrivals.empty()) {
        Instance recorded(topology, std::vector<Packet>(replay.arrivals));
        EngineOptions engine_options = audited.engine;
        std::vector<std::string> replay_policies = policy_list(options);
        if (spec.engine.reconfig_delay > 0) {
          std::erase_if(replay_policies, [&](const std::string& name) {
            return std::find(options.variant_policies.begin(),
                             options.variant_policies.end(),
                             name) == options.variant_policies.end();
          });
        }
        for (const std::string& name : replay_policies) {
          const PolicyFactory policy = named_policy(name);
          RunResult batch;
          std::uint64_t batch_dropped = 0, batch_requeued = 0;
          try {
            auto dispatcher = policy.dispatcher();
            auto scheduler = policy.scheduler(topology);
            Engine engine(recorded, *dispatcher, *scheduler, engine_options);
            batch = engine.run(replay.schedule);
            batch_dropped = engine.packets_dropped();
            batch_requeued = engine.packets_requeued();
          } catch (const std::exception& error) {
            report.violations.push_back("staged replay, " + name +
                                        ": engine threw: " + error.what());
            continue;
          }
          ++report.checks;
          for (std::string& mismatch : compare_staged_batch_vs_stream(
                   recorded, replay.schedule, policy, engine_options, batch,
                   batch_dropped, batch_requeued)) {
            report.violations.push_back("staged replay, " + name + ": " +
                                        std::move(mismatch));
          }
        }
      }
    } catch (const std::invalid_argument& error) {
      report.skipped.push_back(std::string("staged replay rejected: ") + error.what());
    }
  }

  // Batch-vs-stream differential on a recorded arrival prefix from the
  // identical source: per-packet completions must agree bit-for-bit.
  if (calibrated && options.check_stream_equivalence && !spec.make_trace &&
      spec.stages.empty()) {
    try {
      const Topology topology = make_topology(spec.topology, rep_seed);
      TrafficConfig traffic = spec.traffic;
      traffic.shape.seed = rep_seed;
      traffic.speedup_rounds = spec.engine.speedup_rounds;
      const auto source = make_source(topology, traffic);
      const std::size_t prefix = std::min(spec.warmup_packets + spec.measure_packets,
                                          options.stream_replay_packets);
      const Instance recorded(topology, record_arrivals(*source, prefix));
      const EngineOptions engine_options = audited.engine;
      // Under a reconfiguration delay the demand-oblivious / randomized
      // baselines can legitimately starve a finite batch replay (the
      // streamed run merely truncates); replay only the robust policies --
      // intersected with the caller's selection so a restricted sweep
      // never reports a policy it excluded.
      std::vector<std::string> replay_policies = policy_list(options);
      if (spec.engine.reconfig_delay > 0) {
        std::erase_if(replay_policies, [&](const std::string& name) {
          return std::find(options.variant_policies.begin(),
                           options.variant_policies.end(),
                           name) == options.variant_policies.end();
        });
      }
      for (const std::string& name : replay_policies) {
        run_and_check(recorded, name, engine_options, options, "recorded prefix, ", report);
      }
      if (std::find(replay_policies.begin(), replay_policies.end(), "alg") !=
          replay_policies.end()) {
        check_impact_index(recorded, report);
      }
    } catch (const std::invalid_argument& error) {
      report.skipped.push_back(std::string("stream spec rejected: ") + error.what());
    }
  }
  return report;
}

}  // namespace rdcn::check
