#pragma once

// Differential validation: cross-checks engine outcomes against the
// repo's independent oracles, so a disagreement is a proven bug rather
// than a flaky expectation. For one instance it verifies, per policy:
//
//  * the per-step invariant audit passes (EngineOptions::audit);
//  * every packet is delivered and the engine's incremental cost equals
//    the two first-principles recomputations of sim/metrics;
//  * a streamed replay of the same arrival sequence reproduces the batch
//    schedule bit-for-bit, per packet (completion, chunk steps, latency);
//  * no schedule beats the trivial lower bound, and -- for instances small
//    enough for opt/brute_force -- no schedule beats the exhaustive
//    optimum while the trivial bound stays below it;
//  * ALG's certificates hold: the charging scheme covers the cost within
//    alpha (floating point and, for integer weights, exact rational), the
//    halved dual witness is feasible, Lemma 1 balances, and the dual
//    witness bound respects weak duality against the LP optimum;
//  * the engine's incremental impact index agrees with its oracles at
//    every dispatch decision of an ALG replay: exactly (h_count, base,
//    JSQ edge load) and to reassociation tolerance (l_weight, delta)
//    against the naive queue scan, and bit-for-bit against a fresh
//    canonical-shape aggregate rebuilt from the queues per edge.
//
// Streaming specs get the outcome-level invariants (measurement window
// accounting, histogram/throughput consistency, truncation and
// zero-demand bookkeeping) plus the batch-vs-stream replay of a recorded
// arrival prefix. The fuzz driver (tools/rdcn_fuzz) sweeps random specs
// through these checks; check/minimize.hpp turns a failure into a minimal
// ctest reproducer.

#include <cstdint>
#include <string>
#include <vector>

#include "net/instance.hpp"
#include "opt/brute_force.hpp"
#include "run/stream.hpp"
#include "sim/engine.hpp"

namespace rdcn::check {

struct DiffOptions {
  /// Registry names to run; empty = every registered policy.
  std::vector<std::string> policies;
  /// Extra engine-option variants (speedup / capacity / reconfiguration
  /// delay) run under `variant_policies` with the audit and the
  /// batch-vs-stream replay, but without the bound cross-checks (the
  /// brute-force/trivial bounds assume the unit-speed analysis model).
  std::vector<EngineOptions> variants;
  /// Deterministic, starvation-free under every variant above; the
  /// demand-oblivious and randomized baselines can legitimately starve
  /// under a reconfiguration delay, which is behaviour, not a bug.
  std::vector<std::string> variant_policies = {"alg", "maxweight", "fifo"};
  bool audit = true;
  bool check_stream_equivalence = true;
  double eps = 1.0;
  double tolerance = 1e-6;
  BruteForceLimits brute_force{};
  std::size_t max_lp_variables = 4000;
  /// Arrival-prefix length recorded for a stream spec's batch replay.
  std::size_t stream_replay_packets = 1500;
};

struct DiffReport {
  std::size_t checks = 0;                ///< individual cross-checks evaluated
  std::vector<std::string> violations;   ///< each one is a proven bug
  std::vector<std::string> skipped;      ///< spec rejections (not bugs)
  bool ok() const noexcept { return violations.empty(); }
  std::string to_string() const;         ///< violations joined for messages
};

/// Cross-checks every policy's batch run on the instance (see header).
DiffReport check_instance(const Instance& instance, const DiffOptions& options = {});

/// Cross-checks one streamed repetition of the spec per policy, plus the
/// batch-vs-stream replay of a recorded arrival prefix. A spec whose rho
/// calibration is rejected (e.g. too many zero-demand pairs) lands in
/// `skipped`, not in `violations`.
DiffReport check_stream(const StreamSpec& spec, std::uint64_t rep_seed,
                        const DiffOptions& options = {});

/// Replays ALG's dispatch sequence on the instance with the incremental
/// impact index cross-validated against both oracles at every candidate
/// edge of every dispatch (see header). Violations land in `report`;
/// called by check_instance/check_stream and directly by property tests.
void check_impact_index(const Instance& instance, DiffReport& report);

/// First `keep` packets of the instance (same topology) -- the workload
/// bisection step of the fuzz minimizer, exposed so emitted reproducers
/// can rebuild the minimized instance from (spec seed, prefix length).
Instance truncate_packets(const Instance& instance, std::size_t keep);

}  // namespace rdcn::check
