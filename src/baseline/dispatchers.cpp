#include "baseline/dispatchers.hpp"

#include <limits>
#include <stdexcept>

namespace rdcn {

namespace {

RouteDecision fixed_route(const Engine& engine, const Packet& packet) {
  if (!engine.topology().fixed_link_delay(packet.source, packet.destination)) {
    throw std::logic_error("packet has no route");
  }
  RouteDecision decision;
  decision.use_fixed = true;
  return decision;
}

RouteDecision edge_route(EdgeIndex edge) {
  RouteDecision decision;
  decision.use_fixed = false;
  decision.edge = edge;
  return decision;
}

}  // namespace

RouteDecision RandomDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  engine.viable_edges_into(packet.source, packet.destination, edges_);
  if (edges_.empty()) return fixed_route(engine, packet);
  return edge_route(edges_[rng_.next_below(edges_.size())]);
}

RouteDecision RoundRobinDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  engine.viable_edges_into(packet.source, packet.destination, edges_);
  if (edges_.empty()) return fixed_route(engine, packet);
  std::size_t& next = cursor_[{packet.source, packet.destination}];
  const EdgeIndex edge = edges_[next % edges_.size()];
  ++next;
  return edge_route(edge);
}

RouteDecision JsqDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  engine.viable_edges_into(packet.source, packet.destination, edges_);
  if (edges_.empty()) return fixed_route(engine, packet);
  EdgeIndex best = edges_.front();
  std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
  // The load signal (pending chunks parked at the edge's endpoints, each
  // packet counted once) comes from the impact index's integer counters:
  // O(1) per edge, bit-identical to the old two-queue scan.
  const ImpactIndex& index = engine.impact_index();
  for (EdgeIndex e : edges_) {
    const std::int64_t load = index.edge_load(e);
    if (load < best_load) {
      best_load = load;
      best = e;
    }
  }
  return edge_route(best);
}

RouteDecision MinDelayDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  const Topology& topology = engine.topology();
  engine.viable_edges_into(packet.source, packet.destination, edges_);
  if (edges_.empty()) return fixed_route(engine, packet);
  EdgeIndex best = edges_.front();
  Delay best_delay = std::numeric_limits<Delay>::max();
  for (EdgeIndex e : edges_) {
    const Delay delay = topology.total_edge_delay(e);
    if (delay < best_delay) {
      best_delay = delay;
      best = e;
    }
  }
  // Prefer the fixed link only when it strictly beats the best edge's
  // uncontended latency (mirrors the paper's comparison shape).
  if (auto direct = topology.fixed_link_delay(packet.source, packet.destination)) {
    if (*direct < best_delay) return fixed_route(engine, packet);
  }
  return edge_route(best);
}

RouteDecision DirectOnlyDispatcher::dispatch(const Engine& engine, const Packet& packet) {
  const Topology& topology = engine.topology();
  if (topology.fixed_link_delay(packet.source, packet.destination)) {
    return fixed_route(engine, packet);
  }
  engine.viable_edges_into(packet.source, packet.destination, edges_);
  if (edges_.empty()) throw std::logic_error("packet has no route");
  return edge_route(edges_.front());
}

}  // namespace rdcn
