#include "baseline/schedulers.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "match/hungarian.hpp"
#include "match/stable.hpp"

namespace rdcn {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

bool fifo_before(const Candidate& a, const Candidate& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.packet < b.packet;
}

/// Greedy maximal matching taking candidates in the given index order.
std::vector<std::size_t> greedy_in_order(const Engine& engine,
                                         const std::vector<Candidate>& candidates,
                                         const std::vector<std::size_t>& order) {
  std::vector<MatchRequest> requests;
  requests.reserve(order.size());
  for (std::size_t idx : order) {
    requests.push_back(MatchRequest{candidates[idx].transmitter, candidates[idx].receiver});
  }
  const auto accepted = greedy_stable_matching(
      requests, static_cast<std::size_t>(engine.topology().num_transmitters()),
      static_cast<std::size_t>(engine.topology().num_receivers()));
  std::vector<std::size_t> selected;
  selected.reserve(accepted.size());
  for (std::size_t sorted_index : accepted) selected.push_back(order[sorted_index]);
  return selected;
}

}  // namespace

std::vector<std::size_t> MaxWeightScheduler::select(const Engine& engine, Time /*now*/,
                                                    const std::vector<Candidate>& candidates) {
  std::vector<WeightedBipartiteEdge> edges;
  edges.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    edges.push_back(WeightedBipartiteEdge{c.transmitter, c.receiver, c.chunk_weight});
  }
  const MatchingResult matching = max_weight_matching(
      edges, static_cast<std::size_t>(engine.topology().num_transmitters()),
      static_cast<std::size_t>(engine.topology().num_receivers()));
  return matching.edges;  // indices into `edges` == indices into `candidates`
}

std::vector<std::size_t> IslipScheduler::select(const Engine& engine, Time /*now*/,
                                                const std::vector<Candidate>& candidates) {
  const auto num_t = static_cast<std::size_t>(engine.topology().num_transmitters());
  const auto num_r = static_cast<std::size_t>(engine.topology().num_receivers());
  grant_pointer_.resize(num_r, 0);
  accept_pointer_.resize(num_t, 0);

  // request[t][r] = head-of-line candidate for the (t, r) pair (FIFO).
  std::vector<std::vector<std::size_t>> request(num_t, std::vector<std::size_t>(num_r, kNone));
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    auto& slot = request[static_cast<std::size_t>(candidates[i].transmitter)]
                        [static_cast<std::size_t>(candidates[i].receiver)];
    if (slot == kNone || fifo_before(candidates[i], candidates[slot])) slot = i;
  }

  std::vector<bool> t_matched(num_t, false), r_matched(num_r, false);
  std::vector<std::size_t> selected;

  const int max_rounds = iterations_ > 0
                             ? iterations_
                             : static_cast<int>(std::max<std::size_t>(num_t, num_r)) + 1;
  for (int round = 0; round < max_rounds; ++round) {
    // Grant: each unmatched receiver picks, round-robin from its pointer,
    // one requesting unmatched transmitter. A receiver grants exactly one
    // transmitter, but several receivers may grant the same transmitter.
    std::vector<std::vector<std::size_t>> grants(num_t);
    for (std::size_t r = 0; r < num_r; ++r) {
      if (r_matched[r]) continue;
      for (std::size_t k = 0; k < num_t; ++k) {
        const std::size_t t = (grant_pointer_[r] + k) % num_t;
        if (t_matched[t] || request[t][r] == kNone) continue;
        grants[t].push_back(r);
        break;
      }
    }
    // Accept: each granted transmitter accepts round-robin from its pointer.
    bool any_accept = false;
    for (std::size_t t = 0; t < num_t; ++t) {
      if (t_matched[t] || grants[t].empty()) continue;
      std::size_t chosen = grants[t].front();
      std::size_t best_rank = kNone;
      for (std::size_t r : grants[t]) {
        const std::size_t rank = (r + num_r - accept_pointer_[t] % num_r) % num_r;
        if (rank < best_rank) {
          best_rank = rank;
          chosen = r;
        }
      }
      t_matched[t] = true;
      r_matched[chosen] = true;
      selected.push_back(request[t][chosen]);
      any_accept = true;
      if (round == 0) {
        // Pointer update only for first-iteration accepts (classic iSLIP
        // desynchronization rule).
        grant_pointer_[chosen] = (t + 1) % num_t;
        accept_pointer_[t] = (chosen + 1) % num_r;
      }
    }
    if (!any_accept) break;
  }
  return selected;
}

RotorScheduler::RotorScheduler(const Topology& topology) {
  std::vector<BipartiteEdge> edges;
  edges.reserve(static_cast<std::size_t>(topology.num_edges()));
  for (const ReconfigEdge& edge : topology.edges()) {
    edges.push_back(BipartiteEdge{edge.transmitter, edge.receiver});
  }
  coloring_ = color_bipartite_edges(edges, static_cast<std::size_t>(topology.num_transmitters()),
                                    static_cast<std::size_t>(topology.num_receivers()));
}

std::vector<std::size_t> RotorScheduler::select(const Engine& /*engine*/, Time now,
                                                const std::vector<Candidate>& candidates) {
  if (coloring_.num_colors == 0) return {};
  const std::int32_t active_color =
      static_cast<std::int32_t>(now % static_cast<Time>(coloring_.num_colors));
  // The active color class is a matching over (t, r); per active edge,
  // transmit the FIFO head among the packets committed to it.
  std::vector<std::size_t> head_per_edge(coloring_.color.size(), kNone);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto e = static_cast<std::size_t>(candidates[i].edge);
    if (coloring_.color[e] != active_color) continue;
    auto& slot = head_per_edge[e];
    if (slot == kNone || fifo_before(candidates[i], candidates[slot])) slot = i;
  }
  std::vector<std::size_t> selected;
  for (std::size_t slot : head_per_edge) {
    if (slot != kNone) selected.push_back(slot);
  }
  return selected;
}

std::vector<std::size_t> RandomMaximalScheduler::select(
    const Engine& engine, Time /*now*/, const std::vector<Candidate>& candidates) {
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);
  return greedy_in_order(engine, candidates, order);
}

std::vector<std::size_t> FifoScheduler::select(const Engine& engine, Time /*now*/,
                                               const std::vector<Candidate>& candidates) {
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&candidates](std::size_t a, std::size_t b) {
    return fifo_before(candidates[a], candidates[b]);
  });
  return greedy_in_order(engine, candidates, order);
}

}  // namespace rdcn
