#include "baseline/schedulers.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace rdcn {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

bool fifo_before(const Candidate& a, const Candidate& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.packet < b.packet;
}

}  // namespace

void MaxWeightScheduler::select(const Engine& engine, Time /*now*/,
                                const std::vector<Candidate>& candidates, Selection& out) {
  const ActiveEndpoints& active = engine.active_endpoints(candidates);
  const std::size_t kt = active.num_transmitters();
  const std::size_t kr = active.num_receivers();
  if (kt == 0 || kr == 0) return;

  // Dense cost matrix over the ACTIVE endpoints only (rows = smaller
  // side): cell (i, j) holds minus the heaviest chunk weight between the
  // pair, 0 when no candidate connects them, so the min-cost assignment
  // restricted to negative cells is a maximum-weight matching. This is
  // max_weight_matching's encoding (match/hungarian.cpp) inlined over
  // candidates to skip the edge-list build -- keep the two in sync.
  const bool transpose = kt > kr;
  const std::size_t rows = transpose ? kr : kt;
  const std::size_t cols = transpose ? kt : kr;
  cost_.assign(rows * cols, 0.0);
  best_.assign(rows * cols, kNone);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const auto t_rank = static_cast<std::size_t>(active.transmitter_rank(c.transmitter));
    const auto r_rank = static_cast<std::size_t>(active.receiver_rank(c.receiver));
    const std::size_t cell =
        transpose ? r_rank * cols + t_rank : t_rank * cols + r_rank;
    if (-c.chunk_weight < cost_[cell]) {
      cost_[cell] = -c.chunk_weight;
      best_[cell] = i;
    }
  }

  hungarian_.solve(cost_.data(), rows, cols, assignment_);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t cell = i * cols + static_cast<std::size_t>(assignment_[i]);
    if (cost_[cell] < 0.0 && best_[cell] != kNone) out.push(best_[cell]);
  }
}

IslipScheduler::IslipScheduler(const Topology& topology, int iterations)
    : iterations_(iterations),
      grant_pointer_(static_cast<std::size_t>(topology.num_receivers()), 0),
      accept_pointer_(static_cast<std::size_t>(topology.num_transmitters()), 0) {}

void IslipScheduler::select(const Engine& engine, Time /*now*/,
                            const std::vector<Candidate>& candidates, Selection& out) {
  const auto num_t = static_cast<std::size_t>(engine.topology().num_transmitters());
  const auto num_r = static_cast<std::size_t>(engine.topology().num_receivers());
  if (accept_pointer_.size() != num_t || grant_pointer_.size() != num_r) {
    throw std::logic_error(
        "IslipScheduler: engine topology does not match the construction topology");
  }
  const ActiveEndpoints& active = engine.active_endpoints(candidates);
  const std::size_t kt = active.num_transmitters();
  const std::size_t kr = active.num_receivers();
  if (kt == 0 || kr == 0) return;

  // request_[tt*kr + rr] = head-of-line candidate for the (t, r) pair
  // (FIFO), over active-endpoint ranks.
  request_.assign(kt * kr, kNone);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto tt = static_cast<std::size_t>(active.transmitter_rank(candidates[i].transmitter));
    const auto rr = static_cast<std::size_t>(active.receiver_rank(candidates[i].receiver));
    auto& slot = request_[tt * kr + rr];
    if (slot == kNone || fifo_before(candidates[i], candidates[slot])) slot = i;
  }

  t_matched_.assign(kt, 0);
  r_matched_.assign(kr, 0);

  const int max_rounds =
      iterations_ > 0 ? iterations_ : static_cast<int>(std::max(kt, kr)) + 1;
  for (int round = 0; round < max_rounds; ++round) {
    // Grant: each unmatched receiver picks, round-robin from its pointer,
    // the requesting unmatched transmitter closest after the pointer --
    // computed as an argmin over the ACTIVE transmitters' pointer
    // distance, which selects exactly the transmitter the classic
    // full-topology scan would reach first. A receiver grants one
    // transmitter; conflicting grants are resolved in the accept stage by
    // keeping, per transmitter, only the granting receiver with the
    // smallest accept-pointer distance (equivalent to collecting all
    // grants and picking the min, without a per-transmitter grant list).
    grant_rank_.assign(kt, kNone);
    grant_from_.assign(kt, kNone);
    for (std::size_t rr = 0; rr < kr; ++rr) {
      if (r_matched_[rr]) continue;
      const auto r = static_cast<std::size_t>(active.receivers[rr]);
      std::size_t best_tt = kNone;
      std::size_t best_rank = kNone;
      for (std::size_t tt = 0; tt < kt; ++tt) {
        if (t_matched_[tt] || request_[tt * kr + rr] == kNone) continue;
        const auto t = static_cast<std::size_t>(active.transmitters[tt]);
        const std::size_t rank = (t + num_t - grant_pointer_[r] % num_t) % num_t;
        if (rank < best_rank) {
          best_rank = rank;
          best_tt = tt;
        }
      }
      if (best_tt == kNone) continue;
      const auto t = static_cast<std::size_t>(active.transmitters[best_tt]);
      const std::size_t accept_rank = (r + num_r - accept_pointer_[t] % num_r) % num_r;
      if (accept_rank < grant_rank_[best_tt]) {
        grant_rank_[best_tt] = accept_rank;
        grant_from_[best_tt] = rr;
      }
    }
    // Accept: each granted transmitter takes its best-ranked receiver.
    bool any_accept = false;
    for (std::size_t tt = 0; tt < kt; ++tt) {
      const std::size_t rr = grant_from_[tt];
      if (rr == kNone) continue;
      t_matched_[tt] = 1;
      r_matched_[rr] = 1;
      out.push(request_[tt * kr + rr]);
      any_accept = true;
      if (round == 0) {
        // Pointer update only for first-iteration accepts (classic iSLIP
        // desynchronization rule).
        const auto t = static_cast<std::size_t>(active.transmitters[tt]);
        const auto r = static_cast<std::size_t>(active.receivers[rr]);
        grant_pointer_[r] = (t + 1) % num_t;
        accept_pointer_[t] = (r + 1) % num_r;
      }
    }
    if (!any_accept) break;
  }
}

RotorScheduler::RotorScheduler(const Topology& topology) {
  std::vector<BipartiteEdge> edges;
  edges.reserve(static_cast<std::size_t>(topology.num_edges()));
  for (const ReconfigEdge& edge : topology.edges()) {
    edges.push_back(BipartiteEdge{edge.transmitter, edge.receiver});
  }
  coloring_ = color_bipartite_edges(edges, static_cast<std::size_t>(topology.num_transmitters()),
                                    static_cast<std::size_t>(topology.num_receivers()));
  head_stamp_.assign(coloring_.color.size(), 0);
  head_slot_.assign(coloring_.color.size(), 0);
  // A color class is a matching, so this bounds any round's touched set.
  touched_edges_.reserve(std::min(static_cast<std::size_t>(topology.num_transmitters()),
                                  static_cast<std::size_t>(topology.num_receivers())));
}

void RotorScheduler::select(const Engine& /*engine*/, Time now,
                            const std::vector<Candidate>& candidates, Selection& out) {
  if (coloring_.num_colors == 0) return;
  const std::int32_t active_color =
      static_cast<std::int32_t>(now % static_cast<Time>(coloring_.num_colors));
  // The active color class is a matching over (t, r); per active edge,
  // transmit the FIFO head among the packets committed to it. Only edges
  // seen in the candidate scan are touched (serial-stamped slots), so the
  // pass is O(candidates + touched log touched), not O(edges).
  ++serial_;
  touched_edges_.clear();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto e = static_cast<std::size_t>(candidates[i].edge);
    if (coloring_.color[e] != active_color) continue;
    if (head_stamp_[e] != serial_) {
      head_stamp_[e] = serial_;
      head_slot_[e] = i;
      touched_edges_.push_back(e);
    } else if (fifo_before(candidates[i], candidates[head_slot_[e]])) {
      head_slot_[e] = i;
    }
  }
  std::sort(touched_edges_.begin(), touched_edges_.end());
  for (std::size_t e : touched_edges_) out.push(head_slot_[e]);
}

void RandomMaximalScheduler::select(const Engine& engine, Time /*now*/,
                                    const std::vector<Candidate>& candidates, Selection& out) {
  order_.resize(candidates.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  rng_.shuffle(order_);
  scratch_.select_in_order(engine, candidates, order_, out);
}

void FifoScheduler::select(const Engine& engine, Time /*now*/,
                           const std::vector<Candidate>& candidates, Selection& out) {
  order_.resize(candidates.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&candidates](std::size_t a, std::size_t b) {
    return fifo_before(candidates[a], candidates[b]);
  });
  scratch_.select_in_order(engine, candidates, order_, out);
}

}  // namespace rdcn
