#pragma once

// Dispatch-policy baselines: alternatives to the paper's impact-minimizing
// dispatcher, used by the EXP-B2 ablation. Each commits an arriving packet
// to a route using progressively less information:
//
//   RandomDispatcher     -- uniform random candidate edge;
//   RoundRobinDispatcher -- cycles through E_p per (source, destination);
//   JsqDispatcher        -- joins the least-loaded edge (fewest pending
//                           chunks at its transmitter + receiver, read
//                           from the engine's impact-index counters);
//   MinDelayDispatcher   -- ignores queues, picks the smallest d^(e);
//   DirectOnlyDispatcher -- always the fixed link when one exists.
//
// All of them fall back sensibly when E_p is empty or no fixed link
// exists, and set alpha = 0 (they give no dual certificate). Each keeps a
// candidate-edge scratch member (candidate_edges_into), so the per-packet
// dispatch path performs no heap allocations at steady state.

#include <cstdint>
#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace rdcn {

class RandomDispatcher final : public DispatchPolicy {
 public:
  explicit RandomDispatcher(std::uint64_t seed = 1) : rng_(seed) {}
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;

 private:
  Rng rng_;
  std::vector<EdgeIndex> edges_;
};

class RoundRobinDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;

 private:
  std::map<std::pair<NodeIndex, NodeIndex>, std::size_t> cursor_;
  std::vector<EdgeIndex> edges_;
};

class JsqDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;

 private:
  std::vector<EdgeIndex> edges_;
};

class MinDelayDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;

 private:
  std::vector<EdgeIndex> edges_;
};

class DirectOnlyDispatcher final : public DispatchPolicy {
 public:
  RouteDecision dispatch(const Engine& engine, const Packet& packet) override;

 private:
  std::vector<EdgeIndex> edges_;
};

}  // namespace rdcn
