#pragma once

// Schedule-policy baselines from classic switch scheduling (the literature
// the paper generalizes -- [20], [21], [49] -- plus the demand-oblivious
// rotor design of [8]):
//
//   MaxWeightScheduler -- per step, a maximum-weight matching of the
//                         head-of-line chunks (Hungarian);
//   IslipScheduler     -- McKeown's iSLIP: iterative round-robin
//                         request/grant/accept with pointer desynchronization;
//   RotorScheduler     -- cycles through a fixed edge coloring of the
//                         reconfigurable layer, demand-obliviously;
//   RandomMaximalScheduler -- random-order greedy maximal matching;
//   FifoScheduler      -- greedy maximal matching in arrival order
//                         (weight-blind stable matching).

#include <cstdint>
#include <vector>

#include "match/edge_coloring.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace rdcn {

class MaxWeightScheduler final : public SchedulePolicy {
 public:
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override;
};

class IslipScheduler final : public SchedulePolicy {
 public:
  /// iterations = 0 runs request/grant/accept until convergence.
  explicit IslipScheduler(int iterations = 0) : iterations_(iterations) {}
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override;

 private:
  int iterations_;
  std::vector<std::size_t> grant_pointer_;   ///< per receiver
  std::vector<std::size_t> accept_pointer_;  ///< per transmitter
};

class RotorScheduler final : public SchedulePolicy {
 public:
  /// Precomputes the coloring of the topology's reconfigurable layer.
  explicit RotorScheduler(const Topology& topology);
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override;

  std::int32_t cycle_length() const noexcept { return coloring_.num_colors; }

 private:
  EdgeColoring coloring_;
};

class RandomMaximalScheduler final : public SchedulePolicy {
 public:
  explicit RandomMaximalScheduler(std::uint64_t seed = 1) : rng_(seed) {}
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override;

 private:
  Rng rng_;
};

class FifoScheduler final : public SchedulePolicy {
 public:
  std::vector<std::size_t> select(const Engine& engine, Time now,
                                  const std::vector<Candidate>& candidates) override;
};

}  // namespace rdcn
