#pragma once

// Schedule-policy baselines from classic switch scheduling (the literature
// the paper generalizes -- [20], [21], [49] -- plus the demand-oblivious
// rotor design of [8]):
//
//   MaxWeightScheduler -- per step, a maximum-weight matching of the
//                         head-of-line chunks (Hungarian);
//   IslipScheduler     -- McKeown's iSLIP: iterative round-robin
//                         request/grant/accept with pointer desynchronization;
//   RotorScheduler     -- cycles through a fixed edge coloring of the
//                         reconfigurable layer, demand-obliviously;
//   RandomMaximalScheduler -- random-order greedy maximal matching;
//   FifoScheduler      -- greedy maximal matching in arrival order
//                         (weight-blind stable matching).
//
// All five keep their working storage in per-instance members sized by the
// round's active endpoints (engine.active_endpoints), so steady-state
// select() calls perform zero heap allocations.

#include <cstdint>
#include <vector>

#include "match/edge_coloring.hpp"
#include "match/hungarian.hpp"
#include "sim/engine.hpp"
#include "sim/greedy_select.hpp"
#include "util/rng.hpp"

namespace rdcn {

class MaxWeightScheduler final : public SchedulePolicy {
 public:
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

 private:
  // The Hungarian runs on the k_active x k_active submatrix of busy
  // endpoints (rows = smaller active side), stored flat in cost_.
  HungarianWorkspace hungarian_;
  std::vector<double> cost_;
  std::vector<std::size_t> best_;  ///< heaviest candidate per matrix cell
  std::vector<std::int32_t> assignment_;
};

class IslipScheduler final : public SchedulePolicy {
 public:
  /// Sizes the round-robin pointer state from the topology once;
  /// iterations = 0 runs request/grant/accept until convergence. select()
  /// asserts the engine's topology matches (a reused scheduler used to
  /// silently reset its pointers on a size change).
  explicit IslipScheduler(const Topology& topology, int iterations = 0);
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

 private:
  int iterations_;
  std::vector<std::size_t> grant_pointer_;   ///< per receiver (persistent)
  std::vector<std::size_t> accept_pointer_;  ///< per transmitter (persistent)
  // Per-round scratch over active endpoints only.
  std::vector<std::size_t> request_;     ///< kt x kr head-of-line map
  std::vector<char> t_matched_, r_matched_;
  std::vector<std::size_t> grant_rank_;  ///< per active transmitter
  std::vector<std::size_t> grant_from_;  ///< granting receiver rank
};

class RotorScheduler final : public SchedulePolicy {
 public:
  /// Precomputes the coloring of the topology's reconfigurable layer.
  explicit RotorScheduler(const Topology& topology);
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

  std::int32_t cycle_length() const noexcept { return coloring_.num_colors; }

 private:
  EdgeColoring coloring_;
  // Serial-stamped head-of-line slot per edge: only edges touched by the
  // candidate scan are visited, never the whole edge array.
  std::uint64_t serial_ = 0;
  std::vector<std::uint64_t> head_stamp_;
  std::vector<std::size_t> head_slot_;
  std::vector<std::size_t> touched_edges_;
};

class RandomMaximalScheduler final : public SchedulePolicy {
 public:
  explicit RandomMaximalScheduler(std::uint64_t seed = 1) : rng_(seed) {}
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

 private:
  Rng rng_;
  std::vector<std::size_t> order_;
  GreedySelectScratch scratch_;
};

class FifoScheduler final : public SchedulePolicy {
 public:
  void select(const Engine& engine, Time now, const std::vector<Candidate>& candidates,
              Selection& out) override;

 private:
  std::vector<std::size_t> order_;
  GreedySelectScratch scratch_;
};

}  // namespace rdcn
