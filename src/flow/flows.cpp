#include "flow/flows.hpp"

#include <algorithm>
#include <stdexcept>

namespace rdcn {

FlowIndex FlowSet::add_flow(Time arrival, double weight, std::int64_t size,
                            NodeIndex source, NodeIndex destination) {
  if (size < 1) throw std::invalid_argument("flow size must be >= 1");
  if (!(weight > 0)) throw std::invalid_argument("flow weight must be positive");
  if (!flows_.empty() && flows_.back().arrival > arrival) {
    throw std::invalid_argument("flows must be added in arrival order");
  }
  Flow flow;
  flow.id = static_cast<FlowIndex>(flows_.size());
  flow.arrival = arrival;
  flow.weight = weight;
  flow.size = size;
  flow.source = source;
  flow.destination = destination;
  flows_.push_back(flow);
  return flow.id;
}

Instance FlowSet::to_instance() const {
  Instance instance(topology_, {});
  packet_to_flow_.clear();
  for (const Flow& flow : flows_) {
    const double unit_weight = flow.weight / static_cast<double>(flow.size);
    for (std::int64_t k = 0; k < flow.size; ++k) {
      instance.add_packet(flow.arrival, unit_weight, flow.source, flow.destination);
      packet_to_flow_.push_back(flow.id);
    }
  }
  return instance;
}

FlowReport analyze_flows(const FlowSet& flows, const RunResult& result) {
  const auto& mapping = flows.packet_to_flow();
  std::int64_t expected_packets = 0;
  for (const Flow& flow : flows.flows()) expected_packets += flow.size;
  if (mapping.size() != result.outcomes.size() ||
      mapping.size() != static_cast<std::size_t>(expected_packets)) {
    throw std::invalid_argument(
        "run result does not match this FlowSet's expansion (call to_instance first)");
  }
  FlowReport report;
  report.flows.resize(flows.flows().size());
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    FlowOutcome& outcome = report.flows[static_cast<std::size_t>(mapping[i])];
    outcome.completion = std::max(outcome.completion, result.outcomes[i].completion);
    outcome.fractional_cost += result.outcomes[i].weighted_latency;
  }
  std::vector<double> fcts;
  fcts.reserve(report.flows.size());
  for (std::size_t f = 0; f < report.flows.size(); ++f) {
    const Flow& flow = flows.flows()[f];
    FlowOutcome& outcome = report.flows[f];
    outcome.fct = static_cast<double>(outcome.completion - flow.arrival);
    outcome.weighted_fct = flow.weight * outcome.fct;
    report.total_weighted_fct += outcome.weighted_fct;
    report.total_fractional_cost += outcome.fractional_cost;
    fcts.push_back(outcome.fct);
  }
  if (!fcts.empty()) {
    double sum = 0.0;
    for (double f : fcts) sum += f;
    report.mean_fct = sum / static_cast<double>(fcts.size());
    std::sort(fcts.begin(), fcts.end());
    const auto rank =
        static_cast<std::size_t>(0.99 * static_cast<double>(fcts.size() - 1) + 0.5);
    report.p99_fct = fcts[std::min(rank, fcts.size() - 1)];
  }
  return report;
}

}  // namespace rdcn
