#pragma once

// Flow-level front-end. The paper's objective is packet (= flow)
// completion time under the standard reduction: a flow of size L and
// weight w becomes L unit packets of weight w/L (Section II). This module
// makes that reduction a first-class API: describe flows, expand them to
// an Instance, run any scheduler, and pull per-flow completion-time
// metrics back out.

#include <cstdint>
#include <vector>

#include "net/instance.hpp"
#include "sim/engine.hpp"

namespace rdcn {

using FlowIndex = std::int64_t;

struct Flow {
  FlowIndex id = 0;
  Time arrival = 1;
  double weight = 1.0;      ///< total weight of the flow
  std::int64_t size = 1;    ///< number of unit packets
  NodeIndex source = 0;
  NodeIndex destination = 0;
};

class FlowSet {
 public:
  explicit FlowSet(Topology topology) : topology_(std::move(topology)) {}

  /// Appends a flow (arrival order must be non-decreasing). Returns its id.
  FlowIndex add_flow(Time arrival, double weight, std::int64_t size, NodeIndex source,
                     NodeIndex destination);

  const Topology& topology() const noexcept { return topology_; }
  const std::vector<Flow>& flows() const noexcept { return flows_; }

  /// Expands to the unit-packet instance; packet_to_flow()[i] maps each
  /// packet of the expansion to its flow.
  Instance to_instance() const;
  const std::vector<FlowIndex>& packet_to_flow() const noexcept { return packet_to_flow_; }

 private:
  Topology topology_;
  std::vector<Flow> flows_;
  mutable std::vector<FlowIndex> packet_to_flow_;
};

struct FlowOutcome {
  Time completion = 0;       ///< when the LAST fraction of the flow arrives
  double fct = 0.0;          ///< completion - arrival
  double weighted_fct = 0.0; ///< weight * fct
  double fractional_cost = 0.0;  ///< the paper's objective share of this flow
};

struct FlowReport {
  std::vector<FlowOutcome> flows;
  double total_weighted_fct = 0.0;
  double total_fractional_cost = 0.0;  ///< equals RunResult::total_cost
  double mean_fct = 0.0;
  double p99_fct = 0.0;
};

/// Aggregates a run of the expanded instance back to flow granularity.
FlowReport analyze_flows(const FlowSet& flows, const RunResult& result);

}  // namespace rdcn
