#pragma once

// Named (dispatcher, scheduler) policy factories. Every consumer -- the
// bench drivers, the examples, the CLI, and the test-suite -- wires
// policies through this registry instead of hand-rolling the pairing, so
// "alg" means the same thing everywhere and new policies appear in every
// front end at once.
//
// A PolicyFactory is a recipe, not an instance: schedulers are stateful
// (iSLIP pointers, rotor colorings, rng streams), so each run materializes
// fresh policy objects.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/policy.hpp"

namespace rdcn {

struct PolicyFactory {
  std::string name;
  std::function<std::unique_ptr<DispatchPolicy>()> dispatcher;
  std::function<std::unique_ptr<SchedulePolicy>(const Topology&)> scheduler;
};

/// The paper's ALG: ImpactDispatcher + StableMatchingScheduler.
PolicyFactory alg_policy();

/// Looks up a policy by registry name. Known names: "alg", "maxweight",
/// "islip", "rotor", "random", "fifo" (baseline schedulers under JSQ
/// dispatch), and the dispatcher ablations "impact", "random-dispatch",
/// "round-robin", "jsq", "min-delay", "direct-only" (under stable
/// matching). Throws std::invalid_argument for unknown names.
PolicyFactory named_policy(const std::string& name);

/// Names accepted by named_policy, in presentation order.
std::vector<std::string> policy_names();

/// The baseline grid of EXP-B1: scheduler alternatives under a sensible
/// shared dispatcher, ALG first (tables normalize against row 0).
std::vector<PolicyFactory> scheduler_baselines();

/// The dispatcher-ablation grid of EXP-B2 (all under stable matching),
/// ALG's impact rule first.
std::vector<PolicyFactory> dispatcher_ablations();

}  // namespace rdcn
