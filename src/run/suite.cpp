#include "run/suite.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <utility>

#include "run/batch.hpp"
#include "run/policies.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"

namespace rdcn {

namespace {

// --- strict object reading --------------------------------------------------

/// Wraps one JSON object: typed getters with range checks, every error
/// carrying the full path, and unknown-key rejection in finish().
class Fields {
 public:
  Fields(const json::Value& value, std::string path) : path_(std::move(path)) {
    if (!value.is_object()) {
      throw SuiteError(path_, std::string("expected an object, found ") + value.type_name());
    }
    object_ = &value.as_object();
  }

  std::string path_of(const char* key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  const json::Value* member(const char* key) {
    allowed_.emplace_back(key);
    for (const json::Member& entry : *object_) {
      if (entry.first == key) return &entry.second;
    }
    return nullptr;
  }

  std::string str(const char* key, const std::string& fallback) {
    const json::Value* value = member(key);
    if (!value) return fallback;
    if (!value->is_string()) {
      throw SuiteError(path_of(key),
                       std::string("expected a string, found ") + value->type_name());
    }
    return value->as_string();
  }

  std::string required_str(const char* key) {
    const json::Value* value = member(key);
    if (!value) throw SuiteError(path_of(key), "required key is missing");
    if (!value->is_string()) {
      throw SuiteError(path_of(key),
                       std::string("expected a string, found ") + value->type_name());
    }
    return value->as_string();
  }

  std::int64_t integer(const char* key, std::int64_t fallback, std::int64_t lo,
                       std::int64_t hi) {
    const json::Value* value = member(key);
    if (!value) return fallback;
    if (!value->is_integer()) {
      throw SuiteError(path_of(key),
                       std::string("expected an integer, found ") + value->type_name());
    }
    const std::int64_t parsed = value->as_integer();
    if (parsed < lo || parsed > hi) {
      throw SuiteError(path_of(key), std::to_string(parsed) + " is out of range [" +
                                         std::to_string(lo) + ", " + std::to_string(hi) +
                                         "]");
    }
    return parsed;
  }

  double real(const char* key, double fallback, double lo, double hi) {
    const json::Value* value = member(key);
    if (!value) return fallback;
    if (!value->is_number()) {
      throw SuiteError(path_of(key),
                       std::string("expected a number, found ") + value->type_name());
    }
    const double parsed = value->as_number();
    if (!(parsed >= lo && parsed <= hi)) {
      std::ostringstream what;
      what << parsed << " is out of range [" << lo << ", " << hi << "]";
      throw SuiteError(path_of(key), what.str());
    }
    return parsed;
  }

  bool boolean(const char* key, bool fallback) {
    const json::Value* value = member(key);
    if (!value) return fallback;
    if (!value->is_bool()) {
      throw SuiteError(path_of(key),
                       std::string("expected true or false, found ") + value->type_name());
    }
    return value->as_bool();
  }

  /// Rejects every key no getter consulted, listing what the object accepts.
  void finish() const {
    for (const json::Member& entry : *object_) {
      if (std::find(allowed_.begin(), allowed_.end(), entry.first) != allowed_.end()) {
        continue;
      }
      std::string known;
      for (const std::string& key : allowed_) known += " " + key;
      throw SuiteError(path_.empty() ? entry.first : path_ + "." + entry.first,
                       "unknown key; this object accepts:" + known);
    }
  }

 private:
  const json::Object* object_;
  std::string path_;
  std::vector<std::string> allowed_;
};

template <typename Enum>
Enum parse_enum(const std::string& path, const std::string& text,
                std::initializer_list<std::pair<const char*, Enum>> mapping) {
  std::string known;
  for (const auto& [name, value] : mapping) {
    if (text == name) return value;
    known += std::string(" ") + name;
  }
  throw SuiteError(path, "unknown value \"" + text + "\"; known:" + known);
}

constexpr std::int64_t kMaxDelay = 1'000'000;
constexpr std::int64_t kMaxPorts = 256;
constexpr std::int64_t kMaxRacks = 4096;

// --- axis entry parsers -----------------------------------------------------

TopologySpec parse_topology(Fields& fields) {
  TopologySpec spec;
  const std::string kind = fields.required_str("kind");
  spec.kind = parse_enum<TopologySpec::Kind>(
      fields.path_of("kind"), kind,
      {{"two_tier", TopologySpec::Kind::TwoTier},
       {"crossbar", TopologySpec::Kind::Crossbar},
       {"oversubscribed", TopologySpec::Kind::Oversubscribed},
       {"expander", TopologySpec::Kind::Expander},
       {"rotor", TopologySpec::Kind::Rotor}});
  spec.seed_salt = static_cast<std::uint64_t>(
      fields.integer("seed_salt", 0, 0, std::numeric_limits<std::int64_t>::max()));
  spec.fixed_wiring = fields.boolean("fixed_wiring", false);

  switch (spec.kind) {
    case TopologySpec::Kind::TwoTier: {
      auto& net = spec.two_tier;
      net.racks = static_cast<NodeIndex>(fields.integer("racks", net.racks, 2, kMaxRacks));
      net.lasers_per_rack =
          static_cast<NodeIndex>(fields.integer("lasers", net.lasers_per_rack, 1, kMaxPorts));
      net.photodetectors_per_rack = static_cast<NodeIndex>(
          fields.integer("photodetectors", net.photodetectors_per_rack, 1, kMaxPorts));
      net.density = fields.real("density", net.density, 0.0, 1.0);
      net.max_edge_delay =
          static_cast<Delay>(fields.integer("max_edge_delay", net.max_edge_delay, 1, kMaxDelay));
      net.attach_delay =
          static_cast<Delay>(fields.integer("attach_delay", net.attach_delay, 0, kMaxDelay));
      net.fixed_link_delay = static_cast<Delay>(
          fields.integer("fixed_link_delay", net.fixed_link_delay, 0, kMaxDelay));
      net.allow_self_edges = fields.boolean("allow_self_edges", net.allow_self_edges);
      break;
    }
    case TopologySpec::Kind::Crossbar:
      spec.crossbar_ports =
          static_cast<NodeIndex>(fields.integer("ports", spec.crossbar_ports, 2, kMaxRacks));
      break;
    case TopologySpec::Kind::Oversubscribed: {
      auto& net = spec.oversubscribed;
      net.racks = static_cast<NodeIndex>(fields.integer("racks", net.racks, 2, kMaxRacks));
      net.hot_racks =
          static_cast<NodeIndex>(fields.integer("hot_racks", net.hot_racks, 0, kMaxRacks));
      if (net.hot_racks > net.racks) {
        throw SuiteError(fields.path_of("hot_racks"),
                         std::to_string(net.hot_racks) + " exceeds racks (" +
                             std::to_string(net.racks) + ")");
      }
      net.hot_lasers =
          static_cast<NodeIndex>(fields.integer("hot_lasers", net.hot_lasers, 1, kMaxPorts));
      net.hot_photodetectors = static_cast<NodeIndex>(
          fields.integer("hot_photodetectors", net.hot_photodetectors, 1, kMaxPorts));
      net.cold_lasers =
          static_cast<NodeIndex>(fields.integer("cold_lasers", net.cold_lasers, 1, kMaxPorts));
      net.cold_photodetectors = static_cast<NodeIndex>(
          fields.integer("cold_photodetectors", net.cold_photodetectors, 1, kMaxPorts));
      net.density = fields.real("density", net.density, 0.0, 1.0);
      net.fast_delay =
          static_cast<Delay>(fields.integer("fast_delay", net.fast_delay, 1, kMaxDelay));
      net.slow_delay =
          static_cast<Delay>(fields.integer("slow_delay", net.slow_delay, 1, kMaxDelay));
      if (net.slow_delay < net.fast_delay) {
        throw SuiteError(fields.path_of("slow_delay"),
                         std::to_string(net.slow_delay) + " is below fast_delay (" +
                             std::to_string(net.fast_delay) + ")");
      }
      net.slow_fraction = fields.real("slow_fraction", net.slow_fraction, 0.0, 1.0);
      net.attach_delay =
          static_cast<Delay>(fields.integer("attach_delay", net.attach_delay, 0, kMaxDelay));
      net.fixed_base_delay = static_cast<Delay>(
          fields.integer("fixed_base_delay", net.fixed_base_delay, 0, kMaxDelay));
      net.oversubscription = fields.real("oversubscription", net.oversubscription, 1.0, 64.0);
      break;
    }
    case TopologySpec::Kind::Expander: {
      auto& net = spec.expander;
      net.racks = static_cast<NodeIndex>(fields.integer("racks", net.racks, 2, kMaxRacks));
      net.degree = static_cast<NodeIndex>(fields.integer("degree", net.degree, 1, kMaxRacks));
      if (net.degree > net.racks - 1) {
        throw SuiteError(fields.path_of("degree"),
                         std::to_string(net.degree) + " exceeds racks - 1 (" +
                             std::to_string(net.racks - 1) + ")");
      }
      net.lasers_per_rack =
          static_cast<NodeIndex>(fields.integer("lasers", net.lasers_per_rack, 1, kMaxPorts));
      net.photodetectors_per_rack = static_cast<NodeIndex>(
          fields.integer("photodetectors", net.photodetectors_per_rack, 1, kMaxPorts));
      net.min_edge_delay =
          static_cast<Delay>(fields.integer("min_edge_delay", net.min_edge_delay, 1, kMaxDelay));
      net.max_edge_delay =
          static_cast<Delay>(fields.integer("max_edge_delay", net.max_edge_delay, 1, kMaxDelay));
      if (net.max_edge_delay < net.min_edge_delay) {
        throw SuiteError(fields.path_of("max_edge_delay"),
                         std::to_string(net.max_edge_delay) + " is below min_edge_delay (" +
                             std::to_string(net.min_edge_delay) + ")");
      }
      net.attach_delay =
          static_cast<Delay>(fields.integer("attach_delay", net.attach_delay, 0, kMaxDelay));
      net.fixed_link_delay = static_cast<Delay>(
          fields.integer("fixed_link_delay", net.fixed_link_delay, 0, kMaxDelay));
      break;
    }
    case TopologySpec::Kind::Rotor: {
      auto& net = spec.rotor;
      net.racks = static_cast<NodeIndex>(fields.integer("racks", net.racks, 2, kMaxRacks));
      net.ports_per_rack =
          static_cast<NodeIndex>(fields.integer("ports", net.ports_per_rack, 1, kMaxPorts));
      net.num_matchings =
          static_cast<NodeIndex>(fields.integer("matchings", net.num_matchings, 0, kMaxRacks));
      if (net.num_matchings > net.racks - 1) {
        throw SuiteError(fields.path_of("matchings"),
                         std::to_string(net.num_matchings) + " exceeds racks - 1 (" +
                             std::to_string(net.racks - 1) + "); 0 selects all offsets");
      }
      net.edge_delay =
          static_cast<Delay>(fields.integer("edge_delay", net.edge_delay, 1, kMaxDelay));
      net.attach_delay =
          static_cast<Delay>(fields.integer("attach_delay", net.attach_delay, 0, kMaxDelay));
      net.fixed_link_delay = static_cast<Delay>(
          fields.integer("fixed_link_delay", net.fixed_link_delay, 0, kMaxDelay));
      break;
    }
  }
  return spec;
}

/// Shape keys shared by batch workloads and stream traffic.
void parse_shape(Fields& fields, WorkloadConfig& shape) {
  const std::string skew = fields.str("skew", "uniform");
  shape.skew = parse_enum<PairSkew>(fields.path_of("skew"), skew,
                                    {{"uniform", PairSkew::Uniform},
                                     {"zipf", PairSkew::Zipf},
                                     {"hotspot", PairSkew::Hotspot},
                                     {"permutation", PairSkew::Permutation},
                                     {"incast", PairSkew::Incast}});
  shape.zipf_exponent = fields.real("zipf_exponent", shape.zipf_exponent, 0.0, 8.0);
  shape.hotspot_fraction = fields.real("hotspot_fraction", shape.hotspot_fraction, 0.0, 1.0);
  const std::string weights = fields.str("weights", "uniform-int");
  shape.weights = parse_enum<WeightDist>(fields.path_of("weights"), weights,
                                         {{"unit", WeightDist::Unit},
                                          {"uniform-int", WeightDist::UniformInt},
                                          {"pareto", WeightDist::Pareto},
                                          {"bimodal", WeightDist::Bimodal}});
  shape.weight_max = fields.integer("weight_max", shape.weight_max, 1, 1'000'000'000);
  shape.pareto_shape = fields.real("pareto_shape", shape.pareto_shape, 1.01, 16.0);
  shape.elephant_fraction =
      fields.real("elephant_fraction", shape.elephant_fraction, 0.0, 1.0);
}

WorkloadConfig parse_workload(Fields& fields) {
  WorkloadConfig config;
  config.num_packets = static_cast<std::size_t>(
      fields.integer("packets", static_cast<std::int64_t>(config.num_packets), 1, 10'000'000));
  config.arrival_rate = fields.real("rate", config.arrival_rate, 1e-6, 1e6);
  parse_shape(fields, config);
  config.bursty = fields.boolean("bursty", config.bursty);
  config.burst_off_prob = fields.real("burst_off_prob", config.burst_off_prob, 0.0, 0.999);
  return config;
}

TrafficConfig parse_traffic(Fields& fields) {
  TrafficConfig config;
  const std::string process = fields.str("process", "poisson");
  config.process = parse_enum<ArrivalProcess>(
      fields.path_of("process"), process,
      {{"poisson", ArrivalProcess::Poisson}, {"onoff", ArrivalProcess::OnOff}});
  config.rho = fields.real("rho", config.rho, 1e-6, 8.0);
  config.capacity_model = parse_enum<CapacityModel>(
      fields.path_of("capacity_model"), fields.str("capacity_model", "ports"),
      {{"ports", CapacityModel::Ports}, {"max_matching", CapacityModel::MaxMatching}});
  parse_shape(fields, config.shape);
  config.on_stay = fields.real("on_stay", config.on_stay, 0.0, 0.999);
  config.off_stay = fields.real("off_stay", config.off_stay, 0.0, 0.999);
  config.max_zero_demand_fraction =
      fields.real("max_zero_demand_fraction", config.max_zero_demand_fraction, 0.0, 1.0);
  return config;
}

/// An optional array of non-negative indices (edge or rack lists of a
/// stage mutation); element errors name "path.key[j]".
template <typename Index>
std::vector<Index> parse_index_array(Fields& fields, const char* key, std::int64_t hi) {
  std::vector<Index> indices;
  const json::Value* value = fields.member(key);
  if (!value) return indices;
  if (!value->is_array()) {
    throw SuiteError(fields.path_of(key),
                     std::string("expected an array, found ") + value->type_name());
  }
  const json::Array& entries = value->as_array();
  indices.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string path = fields.path_of(key) + "[" + std::to_string(i) + "]";
    if (!entries[i].is_integer()) {
      throw SuiteError(path,
                       std::string("expected an integer, found ") + entries[i].type_name());
    }
    const std::int64_t parsed = entries[i].as_integer();
    if (parsed < 0 || parsed > hi) {
      throw SuiteError(path, std::to_string(parsed) + " is out of range [0, " +
                                 std::to_string(hi) + "]");
    }
    indices.push_back(static_cast<Index>(parsed));
  }
  return indices;
}

/// "-1 inherits" traffic overrides: the range getter admits the sentinel,
/// this rejects the dead zone in between.
void check_override(const std::string& path, double value, const char* requirement) {
  if (value != -1.0 && !(value > 0.0)) {
    throw SuiteError(path, std::string(requirement) + ", or -1 to inherit the traffic axis");
  }
}

StageSpec parse_stage(Fields& fields) {
  StageSpec stage;
  stage.duration =
      static_cast<Time>(fields.integer("duration", 0, 0, 1'000'000'000'000));
  stage.rho = fields.real("rho", -1.0, -1.0, 8.0);
  check_override(fields.path_of("rho"), stage.rho, "must be positive");
  stage.on_stay = fields.real("on_stay", -1.0, -1.0, 0.999);
  check_override(fields.path_of("on_stay"), stage.on_stay, "must be in (0, 1)");
  stage.off_stay = fields.real("off_stay", -1.0, -1.0, 0.999);
  check_override(fields.path_of("off_stay"), stage.off_stay, "must be in (0, 1)");
  // Index bounds against the topology come later (Engine::apply_mutation
  // validates at run time -- the suite grid may span several topologies);
  // the parse-time cap only rejects nonsense.
  constexpr std::int64_t kMaxIndex = 100'000'000;
  stage.mutation.kill_edges = parse_index_array<EdgeIndex>(fields, "kill_edges", kMaxIndex);
  stage.mutation.restore_edges =
      parse_index_array<EdgeIndex>(fields, "restore_edges", kMaxIndex);
  stage.mutation.kill_racks = parse_index_array<NodeIndex>(fields, "kill_racks", kMaxRacks);
  stage.mutation.restore_racks =
      parse_index_array<NodeIndex>(fields, "restore_racks", kMaxRacks);
  stage.mutation.speedup_rounds =
      static_cast<int>(fields.integer("speedup", 0, 0, 16));
  stage.mutation.endpoint_capacity =
      static_cast<int>(fields.integer("capacity", 0, 0, 64));
  stage.mutation.dead_policy = parse_enum<DeadPolicy>(
      fields.path_of("dead"), fields.str("dead", "drop"),
      {{"drop", DeadPolicy::Drop}, {"requeue", DeadPolicy::Requeue}});
  return stage;
}

/// Shared by the suite "stages" key and the standalone schedule document.
std::vector<StageSpec> parse_stage_entries(const json::Value& value,
                                           const std::string& key) {
  if (!value.is_array()) {
    throw SuiteError(key, std::string("expected an array, found ") + value.type_name());
  }
  const json::Array& entries = value.as_array();
  if (entries.empty()) throw SuiteError(key, "needs at least one stage");
  std::vector<StageSpec> stages;
  stages.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string path = key + "[" + std::to_string(i) + "]";
    Fields fields(entries[i], path);
    StageSpec stage = parse_stage(fields);
    fields.finish();
    if (stage.duration == 0 && i + 1 != entries.size()) {
      throw SuiteError(path + ".duration",
                       "0 (run to the end) is legal for the last stage only");
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

EngineOptions parse_engine(Fields& fields) {
  EngineOptions options;
  options.speedup_rounds =
      static_cast<int>(fields.integer("speedup", options.speedup_rounds, 1, 16));
  options.endpoint_capacity =
      static_cast<int>(fields.integer("capacity", options.endpoint_capacity, 1, 64));
  options.reconfig_delay =
      static_cast<Delay>(fields.integer("reconfig_delay", options.reconfig_delay, 0, kMaxDelay));
  if (options.reconfig_delay > 0 && options.endpoint_capacity != 1) {
    throw SuiteError(fields.path_of("reconfig_delay"),
                     "requires capacity == 1 (the engine's reconfiguration-delay "
                     "extension is defined on the matching model)");
  }
  options.audit = fields.boolean("audit", options.audit);
  // Observability: cells run with the engine probe on and their rows grow
  // phase_<name>_ns metrics. Aggregates only -- no raw-span ring; the
  // rdcn_cli profile subcommand is the trace-export front end.
  options.probe.enabled = fields.boolean("profile", options.probe.enabled);
  return options;
}

std::string default_engine_label(const EngineOptions& options) {
  std::string label = "s" + std::to_string(options.speedup_rounds) + "c" +
                      std::to_string(options.endpoint_capacity) + "r" +
                      std::to_string(options.reconfig_delay);
  if (options.audit) label += "-audit";
  if (options.probe.enabled) label += "-profile";
  return label;
}

void check_label(const std::string& path, const std::string& label) {
  if (label.empty()) throw SuiteError(path, "labels must be non-empty");
  if (label.find('/') != std::string::npos) {
    throw SuiteError(path, "label \"" + label + "\" may not contain '/'"
                           " (labels compose cell names)");
  }
}

template <typename Entry>
void check_unique_labels(const std::string& axis, const std::vector<Entry>& entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[i].label == entries[j].label) {
        throw SuiteError(axis + "[" + std::to_string(j) + "].name",
                         "duplicate label \"" + entries[j].label +
                             "\"; give each axis entry a distinct \"name\"");
      }
    }
  }
}

template <typename Fn>
void parse_axis(Fields& doc, const char* key, bool required, Fn&& parse_entry) {
  const json::Value* value = doc.member(key);
  if (!value) {
    if (required) throw SuiteError(key, "required key is missing");
    return;
  }
  if (!value->is_array()) {
    throw SuiteError(key, std::string("expected an array, found ") + value->type_name());
  }
  const json::Array& entries = value->as_array();
  if (required && entries.empty()) {
    throw SuiteError(key, "needs at least one entry");
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    parse_entry(entries[i], std::string(key) + "[" + std::to_string(i) + "]");
  }
}

}  // namespace

SuiteSpec parse_suite(const std::string& json_text) {
  json::Value document;
  try {
    document = json::parse(json_text);
  } catch (const json::ParseError& error) {
    throw SuiteError("", std::string("malformed JSON: ") + error.what());
  }

  Fields doc(document, "");
  SuiteSpec suite;
  suite.name = doc.required_str("suite");
  if (suite.name.empty()) throw SuiteError("suite", "suite name must be non-empty");
  check_label("suite", suite.name);  // the name prefixes every cell name

  suite.mode = parse_enum<SuiteSpec::Mode>(
      "mode", doc.str("mode", "batch"),
      {{"batch", SuiteSpec::Mode::Batch}, {"stream", SuiteSpec::Mode::Stream}});

  if (const json::Value* seeds = doc.member("seeds")) {
    Fields fields(*seeds, "seeds");
    suite.base_seed = static_cast<std::uint64_t>(
        fields.integer("base", 1, 0, std::numeric_limits<std::int64_t>::max()));
    suite.repetitions =
        static_cast<std::size_t>(fields.integer("repetitions", 3, 1, 100'000));
    fields.finish();
  }

  // Policies, validated against the registry so a typo fails at parse time.
  {
    const json::Value* value = doc.member("policies");
    if (!value) throw SuiteError("policies", "required key is missing");
    if (!value->is_array()) {
      throw SuiteError("policies",
                       std::string("expected an array, found ") + value->type_name());
    }
    const json::Array& entries = value->as_array();
    if (entries.empty()) throw SuiteError("policies", "needs at least one policy");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::string path = "policies[" + std::to_string(i) + "]";
      if (!entries[i].is_string()) {
        throw SuiteError(path,
                         std::string("expected a string, found ") + entries[i].type_name());
      }
      const std::string& name = entries[i].as_string();
      try {
        (void)named_policy(name);
      } catch (const std::invalid_argument&) {
        std::string known;
        for (const std::string& entry : policy_names()) known += " " + entry;
        throw SuiteError(path, "unknown policy \"" + name + "\"; registry:" + known);
      }
      if (std::find(suite.policies.begin(), suite.policies.end(), name) !=
          suite.policies.end()) {
        throw SuiteError(path, "duplicate policy \"" + name + "\"");
      }
      suite.policies.push_back(name);
    }
  }

  parse_axis(doc, "topologies", /*required=*/true,
             [&suite](const json::Value& entry, const std::string& path) {
               Fields fields(entry, path);
               SuiteTopology topology;
               topology.spec = parse_topology(fields);
               topology.label = fields.str("name", to_string(topology.spec.kind));
               check_label(fields.path_of("name"), topology.label);
               fields.finish();
               suite.topologies.push_back(std::move(topology));
             });
  check_unique_labels("topologies", suite.topologies);

  parse_axis(doc, "workloads", /*required=*/suite.mode == SuiteSpec::Mode::Batch,
             [&suite](const json::Value& entry, const std::string& path) {
               Fields fields(entry, path);
               SuiteWorkload workload;
               workload.config = parse_workload(fields);
               workload.label = fields.str("name", to_string(workload.config.skew));
               check_label(fields.path_of("name"), workload.label);
               fields.finish();
               suite.workloads.push_back(std::move(workload));
             });
  check_unique_labels("workloads", suite.workloads);
  if (suite.mode == SuiteSpec::Mode::Stream && !suite.workloads.empty()) {
    throw SuiteError("workloads", "only valid when mode is \"batch\" (stream suites "
                                  "describe arrivals under \"traffic\")");
  }

  parse_axis(doc, "traffic", /*required=*/suite.mode == SuiteSpec::Mode::Stream,
             [&suite](const json::Value& entry, const std::string& path) {
               Fields fields(entry, path);
               SuiteTraffic traffic;
               traffic.config = parse_traffic(fields);
               traffic.label = fields.str(
                   "name", traffic.config.process == ArrivalProcess::OnOff ? "onoff"
                                                                           : "poisson");
               check_label(fields.path_of("name"), traffic.label);
               fields.finish();
               suite.traffic.push_back(std::move(traffic));
             });
  check_unique_labels("traffic", suite.traffic);
  if (suite.mode == SuiteSpec::Mode::Batch && !suite.traffic.empty()) {
    throw SuiteError("traffic", "only valid when mode is \"stream\" (batch suites "
                                "describe finite workloads under \"workloads\")");
  }

  parse_axis(doc, "engines", /*required=*/false,
             [&suite](const json::Value& entry, const std::string& path) {
               Fields fields(entry, path);
               SuiteEngine engine;
               engine.options = parse_engine(fields);
               engine.label = fields.str("name", default_engine_label(engine.options));
               check_label(fields.path_of("name"), engine.label);
               fields.finish();
               suite.engines.push_back(std::move(engine));
             });
  if (suite.engines.empty()) {
    suite.engines.push_back({default_engine_label(EngineOptions{}), EngineOptions{}});
  }
  check_unique_labels("engines", suite.engines);

  if (const json::Value* stream = doc.member("stream")) {
    if (suite.mode != SuiteSpec::Mode::Stream) {
      throw SuiteError("stream", "only valid when mode is \"stream\"");
    }
    Fields fields(*stream, "stream");
    suite.warmup_packets =
        static_cast<std::size_t>(fields.integer("warmup", 1000, 0, 100'000'000));
    suite.measure_packets =
        static_cast<std::size_t>(fields.integer("measure", 10000, 1, 1'000'000'000));
    suite.telemetry_window = static_cast<Time>(fields.integer("window", 256, 1, 1'000'000));
    suite.max_steps = static_cast<Time>(
        fields.integer("max_steps", 0, 0, std::numeric_limits<std::int64_t>::max()));
    suite.step_cap_factor = fields.real("step_cap_factor", 8.0, 1.0, 1000.0);
    fields.finish();
  }

  if (const json::Value* stages = doc.member("stages")) {
    if (suite.mode != SuiteSpec::Mode::Stream) {
      throw SuiteError("stages", "only valid when mode is \"stream\" (a stage "
                                 "schedule drives the open-loop StreamRunner)");
    }
    suite.stages = parse_stage_entries(*stages, "stages");
  }

  doc.finish();
  return suite;
}

SuiteSpec load_suite_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SuiteError("", "cannot open suite file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_suite(text.str());
  } catch (const SuiteError& error) {
    // Re-wrap so the message leads with the file; the JSON path survives
    // inside what() (it prefixes the original message).
    throw SuiteError("", path + ": " + error.what());
  }
}

std::vector<StageSpec> parse_stages_json(const std::string& json_text) {
  json::Value document;
  try {
    document = json::parse(json_text);
  } catch (const json::ParseError& error) {
    throw SuiteError("", std::string("malformed JSON: ") + error.what());
  }
  return parse_stage_entries(document, "stages");
}

std::vector<StageSpec> load_stages_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SuiteError("", "cannot open stages file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_stages_json(text.str());
  } catch (const SuiteError& error) {
    throw SuiteError("", path + ": " + error.what());
  }
}

// --- normalized writer ------------------------------------------------------

namespace {

json::Value topology_to_json(const SuiteTopology& topology) {
  json::Object object;
  object.emplace_back("name", topology.label);
  object.emplace_back("kind", to_string(topology.spec.kind));
  switch (topology.spec.kind) {
    case TopologySpec::Kind::TwoTier: {
      const auto& net = topology.spec.two_tier;
      object.emplace_back("racks", static_cast<std::int64_t>(net.racks));
      object.emplace_back("lasers", static_cast<std::int64_t>(net.lasers_per_rack));
      object.emplace_back("photodetectors",
                          static_cast<std::int64_t>(net.photodetectors_per_rack));
      object.emplace_back("density", net.density);
      object.emplace_back("max_edge_delay", static_cast<std::int64_t>(net.max_edge_delay));
      object.emplace_back("attach_delay", static_cast<std::int64_t>(net.attach_delay));
      object.emplace_back("fixed_link_delay",
                          static_cast<std::int64_t>(net.fixed_link_delay));
      object.emplace_back("allow_self_edges", net.allow_self_edges);
      break;
    }
    case TopologySpec::Kind::Crossbar:
      object.emplace_back("ports", static_cast<std::int64_t>(topology.spec.crossbar_ports));
      break;
    case TopologySpec::Kind::Oversubscribed: {
      const auto& net = topology.spec.oversubscribed;
      object.emplace_back("racks", static_cast<std::int64_t>(net.racks));
      object.emplace_back("hot_racks", static_cast<std::int64_t>(net.hot_racks));
      object.emplace_back("hot_lasers", static_cast<std::int64_t>(net.hot_lasers));
      object.emplace_back("hot_photodetectors",
                          static_cast<std::int64_t>(net.hot_photodetectors));
      object.emplace_back("cold_lasers", static_cast<std::int64_t>(net.cold_lasers));
      object.emplace_back("cold_photodetectors",
                          static_cast<std::int64_t>(net.cold_photodetectors));
      object.emplace_back("density", net.density);
      object.emplace_back("fast_delay", static_cast<std::int64_t>(net.fast_delay));
      object.emplace_back("slow_delay", static_cast<std::int64_t>(net.slow_delay));
      object.emplace_back("slow_fraction", net.slow_fraction);
      object.emplace_back("attach_delay", static_cast<std::int64_t>(net.attach_delay));
      object.emplace_back("fixed_base_delay",
                          static_cast<std::int64_t>(net.fixed_base_delay));
      object.emplace_back("oversubscription", net.oversubscription);
      break;
    }
    case TopologySpec::Kind::Expander: {
      const auto& net = topology.spec.expander;
      object.emplace_back("racks", static_cast<std::int64_t>(net.racks));
      object.emplace_back("degree", static_cast<std::int64_t>(net.degree));
      object.emplace_back("lasers", static_cast<std::int64_t>(net.lasers_per_rack));
      object.emplace_back("photodetectors",
                          static_cast<std::int64_t>(net.photodetectors_per_rack));
      object.emplace_back("min_edge_delay", static_cast<std::int64_t>(net.min_edge_delay));
      object.emplace_back("max_edge_delay", static_cast<std::int64_t>(net.max_edge_delay));
      object.emplace_back("attach_delay", static_cast<std::int64_t>(net.attach_delay));
      object.emplace_back("fixed_link_delay",
                          static_cast<std::int64_t>(net.fixed_link_delay));
      break;
    }
    case TopologySpec::Kind::Rotor: {
      const auto& net = topology.spec.rotor;
      object.emplace_back("racks", static_cast<std::int64_t>(net.racks));
      object.emplace_back("ports", static_cast<std::int64_t>(net.ports_per_rack));
      object.emplace_back("matchings", static_cast<std::int64_t>(net.num_matchings));
      object.emplace_back("edge_delay", static_cast<std::int64_t>(net.edge_delay));
      object.emplace_back("attach_delay", static_cast<std::int64_t>(net.attach_delay));
      object.emplace_back("fixed_link_delay",
                          static_cast<std::int64_t>(net.fixed_link_delay));
      break;
    }
  }
  object.emplace_back("seed_salt", static_cast<std::int64_t>(topology.spec.seed_salt));
  object.emplace_back("fixed_wiring", topology.spec.fixed_wiring);
  return json::Value(std::move(object));
}

void shape_to_json(const WorkloadConfig& shape, json::Object& object) {
  object.emplace_back("skew", to_string(shape.skew));
  object.emplace_back("zipf_exponent", shape.zipf_exponent);
  object.emplace_back("hotspot_fraction", shape.hotspot_fraction);
  object.emplace_back("weights", to_string(shape.weights));
  object.emplace_back("weight_max", shape.weight_max);
  object.emplace_back("pareto_shape", shape.pareto_shape);
  object.emplace_back("elephant_fraction", shape.elephant_fraction);
}

json::Value workload_to_json(const SuiteWorkload& workload) {
  json::Object object;
  object.emplace_back("name", workload.label);
  object.emplace_back("packets", static_cast<std::int64_t>(workload.config.num_packets));
  object.emplace_back("rate", workload.config.arrival_rate);
  shape_to_json(workload.config, object);
  object.emplace_back("bursty", workload.config.bursty);
  object.emplace_back("burst_off_prob", workload.config.burst_off_prob);
  return json::Value(std::move(object));
}

json::Value traffic_to_json(const SuiteTraffic& traffic) {
  json::Object object;
  object.emplace_back("name", traffic.label);
  object.emplace_back(
      "process", traffic.config.process == ArrivalProcess::OnOff ? "onoff" : "poisson");
  object.emplace_back("rho", traffic.config.rho);
  object.emplace_back("capacity_model",
                      traffic.config.capacity_model == CapacityModel::MaxMatching
                          ? "max_matching"
                          : "ports");
  shape_to_json(traffic.config.shape, object);
  object.emplace_back("on_stay", traffic.config.on_stay);
  object.emplace_back("off_stay", traffic.config.off_stay);
  object.emplace_back("max_zero_demand_fraction", traffic.config.max_zero_demand_fraction);
  return json::Value(std::move(object));
}

template <typename Index>
json::Value indices_to_json(const std::vector<Index>& indices) {
  json::Array array;
  for (const Index index : indices) array.emplace_back(static_cast<std::int64_t>(index));
  return json::Value(std::move(array));
}

json::Value stage_to_json(const StageSpec& stage) {
  json::Object object;
  object.emplace_back("duration", static_cast<std::int64_t>(stage.duration));
  object.emplace_back("rho", stage.rho);
  object.emplace_back("on_stay", stage.on_stay);
  object.emplace_back("off_stay", stage.off_stay);
  object.emplace_back("kill_edges", indices_to_json(stage.mutation.kill_edges));
  object.emplace_back("restore_edges", indices_to_json(stage.mutation.restore_edges));
  object.emplace_back("kill_racks", indices_to_json(stage.mutation.kill_racks));
  object.emplace_back("restore_racks", indices_to_json(stage.mutation.restore_racks));
  object.emplace_back("speedup", static_cast<std::int64_t>(stage.mutation.speedup_rounds));
  object.emplace_back("capacity",
                      static_cast<std::int64_t>(stage.mutation.endpoint_capacity));
  object.emplace_back(
      "dead", stage.mutation.dead_policy == DeadPolicy::Requeue ? "requeue" : "drop");
  return json::Value(std::move(object));
}

json::Value engine_to_json(const SuiteEngine& engine) {
  json::Object object;
  object.emplace_back("name", engine.label);
  object.emplace_back("speedup", static_cast<std::int64_t>(engine.options.speedup_rounds));
  object.emplace_back("capacity",
                      static_cast<std::int64_t>(engine.options.endpoint_capacity));
  object.emplace_back("reconfig_delay",
                      static_cast<std::int64_t>(engine.options.reconfig_delay));
  object.emplace_back("audit", engine.options.audit);
  object.emplace_back("profile", engine.options.probe.enabled);
  return json::Value(std::move(object));
}

}  // namespace

std::string suite_to_json(const SuiteSpec& spec) {
  json::Object document;
  document.emplace_back("suite", spec.name);
  document.emplace_back("mode", spec.mode == SuiteSpec::Mode::Stream ? "stream" : "batch");
  {
    json::Object seeds;
    seeds.emplace_back("base", static_cast<std::int64_t>(spec.base_seed));
    seeds.emplace_back("repetitions", static_cast<std::int64_t>(spec.repetitions));
    document.emplace_back("seeds", json::Value(std::move(seeds)));
  }
  {
    json::Array policies;
    for (const std::string& policy : spec.policies) policies.emplace_back(policy);
    document.emplace_back("policies", json::Value(std::move(policies)));
  }
  {
    json::Array engines;
    for (const SuiteEngine& engine : spec.engines) engines.push_back(engine_to_json(engine));
    document.emplace_back("engines", json::Value(std::move(engines)));
  }
  {
    json::Array topologies;
    for (const SuiteTopology& topology : spec.topologies) {
      topologies.push_back(topology_to_json(topology));
    }
    document.emplace_back("topologies", json::Value(std::move(topologies)));
  }
  if (spec.mode == SuiteSpec::Mode::Batch) {
    json::Array workloads;
    for (const SuiteWorkload& workload : spec.workloads) {
      workloads.push_back(workload_to_json(workload));
    }
    document.emplace_back("workloads", json::Value(std::move(workloads)));
  } else {
    json::Array traffic;
    for (const SuiteTraffic& entry : spec.traffic) traffic.push_back(traffic_to_json(entry));
    document.emplace_back("traffic", json::Value(std::move(traffic)));
    json::Object stream;
    stream.emplace_back("warmup", static_cast<std::int64_t>(spec.warmup_packets));
    stream.emplace_back("measure", static_cast<std::int64_t>(spec.measure_packets));
    stream.emplace_back("window", static_cast<std::int64_t>(spec.telemetry_window));
    stream.emplace_back("max_steps", static_cast<std::int64_t>(spec.max_steps));
    stream.emplace_back("step_cap_factor", spec.step_cap_factor);
    document.emplace_back("stream", json::Value(std::move(stream)));
    if (!spec.stages.empty()) {
      json::Array stages;
      for (const StageSpec& stage : spec.stages) stages.push_back(stage_to_json(stage));
      document.emplace_back("stages", json::Value(std::move(stages)));
    }
  }
  return json::dump(json::Value(std::move(document)), 2) + "\n";
}

// --- grid expansion ---------------------------------------------------------

std::vector<ScenarioSpec> suite_batch_grid(const SuiteSpec& spec) {
  if (spec.mode != SuiteSpec::Mode::Batch) {
    throw SuiteError("mode", "suite_batch_grid needs a batch suite");
  }
  std::vector<ScenarioSpec> grid;
  grid.reserve(spec.topologies.size() * spec.workloads.size() * spec.engines.size());
  for (const SuiteTopology& topology : spec.topologies) {
    for (const SuiteWorkload& workload : spec.workloads) {
      for (const SuiteEngine& engine : spec.engines) {
        ScenarioSpec cell;
        cell.name =
            spec.name + "/" + topology.label + "/" + workload.label + "/" + engine.label;
        cell.topology = topology.spec;
        cell.workload = workload.config;
        cell.engine = engine.options;
        cell.base_seed = spec.base_seed;
        cell.repetitions = spec.repetitions;
        grid.push_back(std::move(cell));
      }
    }
  }
  return grid;
}

std::vector<StreamSpec> suite_stream_grid(const SuiteSpec& spec) {
  if (spec.mode != SuiteSpec::Mode::Stream) {
    throw SuiteError("mode", "suite_stream_grid needs a stream suite");
  }
  std::vector<StreamSpec> grid;
  grid.reserve(spec.topologies.size() * spec.traffic.size() * spec.engines.size());
  for (const SuiteTopology& topology : spec.topologies) {
    for (const SuiteTraffic& traffic : spec.traffic) {
      for (const SuiteEngine& engine : spec.engines) {
        StreamSpec cell;
        cell.name =
            spec.name + "/" + topology.label + "/" + traffic.label + "/" + engine.label;
        cell.topology = topology.spec;
        cell.traffic = traffic.config;
        cell.traffic.speedup_rounds = engine.options.speedup_rounds;
        cell.engine = engine.options;
        cell.base_seed = spec.base_seed;
        cell.repetitions = spec.repetitions;
        cell.warmup_packets = spec.warmup_packets;
        cell.measure_packets = spec.measure_packets;
        cell.telemetry_window = spec.telemetry_window;
        cell.max_steps = spec.max_steps;
        cell.step_cap_factor = spec.step_cap_factor;
        cell.stages = spec.stages;
        grid.push_back(std::move(cell));
      }
    }
  }
  return grid;
}

// --- execution --------------------------------------------------------------

SuiteRunner::SuiteRunner(SuiteSpec spec) : spec_(std::move(spec)) {}

std::size_t SuiteRunner::grid_cells() const noexcept {
  const std::size_t axis = spec_.mode == SuiteSpec::Mode::Batch ? spec_.workloads.size()
                                                                : spec_.traffic.size();
  return spec_.topologies.size() * axis * spec_.engines.size();
}

namespace {

/// Axis labels of a cell, recovered from run order (topology-major, then
/// workload/traffic, then engine -- matching the grid expansion loops).
struct CellAxes {
  const SuiteTopology* topology;
  std::string variant;  ///< workload or traffic label
  const SuiteEngine* engine;
};

std::vector<CellAxes> cell_axes(const SuiteSpec& spec) {
  std::vector<CellAxes> axes;
  const std::size_t variants = spec.mode == SuiteSpec::Mode::Batch ? spec.workloads.size()
                                                                   : spec.traffic.size();
  for (const SuiteTopology& topology : spec.topologies) {
    for (std::size_t v = 0; v < variants; ++v) {
      const std::string& variant = spec.mode == SuiteSpec::Mode::Batch
                                       ? spec.workloads[v].label
                                       : spec.traffic[v].label;
      for (const SuiteEngine& engine : spec.engines) {
        axes.push_back({&topology, variant, &engine});
      }
    }
  }
  return axes;
}

json::Object line_header(const SuiteSpec& spec, const CellAxes& axes,
                         const std::string& policy, const std::string& scenario) {
  json::Object params;
  params.emplace_back("scenario", scenario);
  params.emplace_back("topology", axes.topology->label);
  params.emplace_back("kind", to_string(axes.topology->spec.kind));
  params.emplace_back(spec.mode == SuiteSpec::Mode::Batch ? "workload" : "traffic",
                      axes.variant);
  params.emplace_back("engine", axes.engine->label);
  params.emplace_back("mode", spec.mode == SuiteSpec::Mode::Batch ? "batch" : "stream");
  params.emplace_back("base_seed", static_cast<std::int64_t>(spec.base_seed));
  params.emplace_back("reps", static_cast<std::int64_t>(spec.repetitions));

  json::Object line;
  line.emplace_back("bench", spec.name);
  line.emplace_back("name", policy);
  line.emplace_back("params", json::Value(std::move(params)));
  return line;
}

}  // namespace

std::vector<std::string> SuiteRunner::cell_names() const {
  const std::vector<CellAxes> axes = cell_axes(spec_);
  std::vector<std::string> names;
  names.reserve(axes.size() * spec_.policies.size());
  for (const CellAxes& cell : axes) {
    for (const std::string& policy : spec_.policies) {
      names.push_back(spec_.name + "/" + cell.topology->label + "/" + cell.variant + "/" +
                      cell.engine->label + " x " + policy);
    }
  }
  return names;
}

namespace {

/// "profile" cells: per-phase self time (summed across repetitions) as
/// phase_<name>_ns metrics, so suite diffs can track where time went.
void append_phase_metrics(json::Object& line, const ProbeReport& probe) {
  if (!probe.enabled) return;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    line.emplace_back(std::string("phase_") + to_string(static_cast<Phase>(i)) + "_ns",
                      static_cast<std::int64_t>(probe.phase_self_ns[i]));
  }
}

/// Staged cells: one "stages" array with per-stage recovery metrics
/// aggregated across repetitions -- counts summed, entry backlog and
/// time-to-drain averaged (drain only over the reps that did drain;
/// drained_reps says how many that was), latency percentiles over the
/// merged per-stage histograms (the -1 sentinel when nothing completed).
void append_stage_metrics(json::Object& line, const StreamResult& result) {
  if (result.repetitions.empty() || result.repetitions.front().stages.empty()) return;
  const std::size_t num_stages = result.repetitions.front().stages.size();
  const auto reps = static_cast<double>(result.repetitions.size());
  json::Array stages;
  for (std::size_t k = 0; k < num_stages; ++k) {
    std::uint64_t offered = 0, served = 0, dropped = 0, requeued = 0;
    double entry_backlog = 0.0, drain = 0.0;
    std::int64_t drained_reps = 0;
    LatencyHistogram latency;
    for (const StreamRepOutcome& rep : result.repetitions) {
      const StageOutcome& stage = rep.stages[k];
      offered += stage.offered;
      served += stage.served;
      dropped += stage.dropped;
      requeued += stage.requeued;
      entry_backlog += static_cast<double>(stage.entry_backlog);
      if (stage.drain_steps >= 0) {
        drain += static_cast<double>(stage.drain_steps);
        ++drained_reps;
      }
      latency.merge(stage.latency);
    }
    const StageOutcome& first = result.repetitions.front().stages[k];
    json::Object object;
    object.emplace_back("stage", static_cast<std::int64_t>(k));
    object.emplace_back("start", static_cast<std::int64_t>(first.start));
    object.emplace_back("edges_killed", static_cast<std::int64_t>(first.edges_killed));
    object.emplace_back("edges_restored",
                        static_cast<std::int64_t>(first.edges_restored));
    object.emplace_back("offered", static_cast<std::int64_t>(offered));
    object.emplace_back("served", static_cast<std::int64_t>(served));
    object.emplace_back("dropped", static_cast<std::int64_t>(dropped));
    object.emplace_back("requeued", static_cast<std::int64_t>(requeued));
    object.emplace_back("entry_backlog_mean", entry_backlog / reps);
    object.emplace_back("drained_reps", drained_reps);
    object.emplace_back("drain_steps_mean",
                        drained_reps > 0 ? drain / static_cast<double>(drained_reps)
                                         : -1.0);
    object.emplace_back("p50", latency.empty() ? std::int64_t{-1}
                                               : static_cast<std::int64_t>(latency.p50()));
    object.emplace_back("p99", latency.empty() ? std::int64_t{-1}
                                               : static_cast<std::int64_t>(latency.p99()));
    stages.push_back(json::Value(std::move(object)));
  }
  line.emplace_back("stages", json::Value(std::move(stages)));
}

/// Isolate-mode error row: the cell header plus the structured failure
/// ("status": "failed", exception type + message, the losing repetition
/// and how many attempts it got). Healthy rows carry no "status" key, so
/// downstream strict parsers (perf_diff) reject mixed streams loudly
/// instead of averaging error rows into metrics.
std::string render_error_row(const SuiteSpec& spec, const CellAxes& axes,
                             const std::string& policy, const std::string& scenario,
                             const CellError& error) {
  json::Object line = line_header(spec, axes, policy, scenario);
  line.emplace_back("status", "failed");
  line.emplace_back("error_type", error.type);
  line.emplace_back("error_message", error.message);
  line.emplace_back("repetition", static_cast<std::int64_t>(error.repetition));
  line.emplace_back("attempts", static_cast<std::int64_t>(error.attempts));
  return json::dump(json::Value(std::move(line)));
}

std::string render_batch_row(const SuiteSpec& spec, const CellAxes& axes,
                             const ScenarioResult& result) {
  if (result.error.failed) {
    return render_error_row(spec, axes, result.policy, result.scenario, result.error);
  }
  json::Object line = line_header(spec, axes, result.policy, result.scenario);
  line.emplace_back("total_cost", result.cost.mean());
  line.emplace_back("wall_ms", result.wall_ms.mean());
  line.emplace_back("cost_stddev", result.cost.stddev());
  line.emplace_back("cost_min", result.cost.min());
  line.emplace_back("cost_max", result.cost.max());
  append_phase_metrics(line, result.probe);
  return json::dump(json::Value(std::move(line)));
}

std::string render_stream_row(const SuiteSpec& spec, const CellAxes& axes,
                              const StreamResult& result) {
  if (result.error.failed) {
    return render_error_row(spec, axes, result.policy, result.scenario, result.error);
  }
  json::Object line = line_header(spec, axes, result.policy, result.scenario);
  double total_cost = 0.0;
  for (const StreamRepOutcome& rep : result.repetitions) total_cost += rep.total_cost;
  if (!result.repetitions.empty()) {
    total_cost /= static_cast<double>(result.repetitions.size());
  }
  line.emplace_back("total_cost", total_cost);
  line.emplace_back("wall_ms", result.wall_ms.mean());
  line.emplace_back("throughput", result.throughput.mean());
  line.emplace_back("measured_rho", result.measured_rho.mean());
  // `latency` folds converged repetitions only (truncated reps are a
  // censored sample, kept apart in latency_truncated); when every rep
  // truncated, the percentiles have no sample and emit the -1 sentinel.
  line.emplace_back("mean_latency", result.latency.mean());
  const bool has_latency = !result.latency.empty();
  line.emplace_back("p50", has_latency ? static_cast<std::int64_t>(result.latency.p50())
                                       : std::int64_t{-1});
  line.emplace_back("p95", has_latency ? static_cast<std::int64_t>(result.latency.p95())
                                       : std::int64_t{-1});
  line.emplace_back("p99", has_latency ? static_cast<std::int64_t>(result.latency.p99())
                                       : std::int64_t{-1});
  line.emplace_back("backlog", result.backlog.mean());
  line.emplace_back("truncated_reps", static_cast<std::int64_t>(result.truncated_reps));
  {
    json::Array flags;
    for (const StreamRepOutcome& rep : result.repetitions) flags.emplace_back(rep.truncated);
    line.emplace_back("rep_truncated", json::Value(std::move(flags)));
  }
  line.emplace_back("zero_demand", static_cast<std::int64_t>(result.zero_demand));
  line.emplace_back("dropped", static_cast<std::int64_t>(result.dropped));
  line.emplace_back("requeued", static_cast<std::int64_t>(result.requeued));
  append_stage_metrics(line, result);
  append_phase_metrics(line, result.probe);
  return json::dump(json::Value(std::move(line)));
}

}  // namespace

SuiteJournal load_suite_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SuiteError("", "cannot open journal file " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty()) throw SuiteError("", path + ": empty journal");

  const auto parse_line = [&](const std::string& text, std::size_t index) {
    try {
      return json::parse(text);
    } catch (const json::ParseError& error) {
      throw SuiteError("", path + ": journal line " + std::to_string(index + 1) +
                               " is not valid JSON: " + error.what());
    }
  };

  const json::Value header_doc = parse_line(lines.front(), 0);
  SuiteJournal journal;
  std::int64_t declared_cells = 0;
  try {
    Fields header(header_doc, "");
    const json::Value* tag = header.member("rdcn_suite_journal");
    if (tag == nullptr || !tag->is_integer() || tag->as_integer() != 1) {
      throw SuiteError("rdcn_suite_journal", "missing or unsupported journal version");
    }
    header.required_str("suite");  // informational; the spec text is authoritative
    declared_cells = header.integer("cells", -1, -1,
                                    std::numeric_limits<std::int64_t>::max());
    if (declared_cells < 0) {
      throw SuiteError("cells", "required key is missing");
    }
    journal.spec_json = header.required_str("spec");
    header.finish();
  } catch (const SuiteError& error) {
    throw SuiteError("", path + ": " + error.what());
  }

  try {
    journal.spec = parse_suite(journal.spec_json);
  } catch (const SuiteError& error) {
    throw SuiteError("", path + ": embedded spec is invalid: " + error.what());
  }
  const SuiteRunner probe(journal.spec);
  const std::size_t total = probe.cells();
  if (static_cast<std::size_t>(declared_cells) != total) {
    throw SuiteError("", path + ": header declares " + std::to_string(declared_cells) +
                             " cells but the embedded spec expands to " +
                             std::to_string(total));
  }
  const std::vector<std::string> names = probe.cell_names();

  journal.rows.assign(total, std::string());
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const json::Value entry_doc = parse_line(lines[i], i);
    try {
      Fields entry(entry_doc, "");
      const std::int64_t cell =
          entry.integer("cell", -1, -1, static_cast<std::int64_t>(total) - 1);
      if (cell < 0) throw SuiteError("cell", "required key is missing or out of range");
      const std::string name = entry.required_str("name");
      const std::string row = entry.required_str("row");
      entry.finish();
      const auto index = static_cast<std::size_t>(cell);
      if (name != names[index]) {
        throw SuiteError("name", "cell " + std::to_string(cell) + " is named \"" +
                                     names[index] + "\" in the spec, not \"" + name + "\"");
      }
      if (!journal.rows[index].empty()) {
        throw SuiteError("cell", "cell " + std::to_string(cell) + " recorded twice");
      }
      json::parse(row);  // rows must themselves be strict JSON
      journal.rows[index] = row;
    } catch (const json::ParseError& error) {
      throw SuiteError("", path + ": journal line " + std::to_string(i + 1) +
                               " row is not valid JSON: " + error.what());
    } catch (const SuiteError& error) {
      throw SuiteError("", path + ": journal line " + std::to_string(i + 1) + ": " +
                               error.what());
    }
  }
  return journal;
}

std::vector<std::string> SuiteRunner::run(const SuiteRunOptions& options,
                                          const SuiteJournal* resume) const {
  const std::vector<CellAxes> axes = cell_axes(spec_);
  const std::vector<std::string> names = cell_names();
  const std::size_t policies = spec_.policies.size();
  const std::size_t total = names.size();
  const std::string spec_json = suite_to_json(spec_);

  std::vector<std::string> rows(total);
  if (resume != nullptr) {
    if (resume->spec_json != spec_json) {
      throw SuiteError("", "journal does not belong to this suite (normalized specs "
                           "differ); resume refused");
    }
    if (resume->rows.size() != total) {
      throw SuiteError("", "journal records " + std::to_string(resume->rows.size()) +
                               " cells, suite has " + std::to_string(total));
    }
    rows = resume->rows;
  }

  // The journal is the whole manifest, rewritten via write-temp-fsync-
  // rename after every completed cell: at any instant the file on disk is
  // a complete, valid journal, so SIGKILL at any byte loses at most the
  // in-flight cells. Rows are stored verbatim, which is what makes a
  // resumed run's merged output bit-identical to an uninterrupted one.
  std::mutex journal_mutex;
  const auto write_journal = [&]() {
    json::Object header;
    header.emplace_back("rdcn_suite_journal", std::int64_t{1});
    header.emplace_back("suite", spec_.name);
    header.emplace_back("cells", static_cast<std::int64_t>(total));
    header.emplace_back("spec", spec_json);
    std::string text = json::dump(json::Value(std::move(header)));
    text += '\n';
    for (std::size_t i = 0; i < total; ++i) {
      if (rows[i].empty()) continue;
      json::Object entry;
      entry.emplace_back("cell", static_cast<std::int64_t>(i));
      entry.emplace_back("name", names[i]);
      entry.emplace_back("row", rows[i]);
      text += json::dump(json::Value(std::move(entry)));
      text += '\n';
    }
    atomic_write_file(options.journal, text);
  };
  if (!options.journal.empty()) {
    // Persist the header (plus any resumed rows) up front: a run killed
    // before its first cell completes still leaves a resumable journal.
    const std::lock_guard<std::mutex> lock(journal_mutex);
    write_journal();
  }
  const auto record = [&](std::size_t global, std::string row) {
    const std::lock_guard<std::mutex> lock(journal_mutex);
    rows[global] = std::move(row);
    if (!options.journal.empty()) write_journal();
  };

  BatchRunner runner(options.threads);
  runner.set_policy(options.policy);
  // Only cells the journal does not already record are enqueued;
  // global_of maps the runner's dense cell index back to the suite index.
  std::vector<std::size_t> global_of;

  if (spec_.mode == SuiteSpec::Mode::Batch) {
    const std::vector<ScenarioSpec> grid = suite_batch_grid(spec_);
    for (std::size_t g = 0; g < grid.size(); ++g) {
      for (std::size_t p = 0; p < policies; ++p) {
        const std::size_t global = g * policies + p;
        if (!rows[global].empty()) continue;
        runner.add(grid[g], named_policy(spec_.policies[p]));
        global_of.push_back(global);
      }
    }
    runner.run([&](std::size_t cell, const ScenarioResult& result) {
      const std::size_t global = global_of[cell];
      record(global, render_batch_row(spec_, axes[global / policies], result));
    });
  } else {
    const std::vector<StreamSpec> grid = suite_stream_grid(spec_);
    for (std::size_t g = 0; g < grid.size(); ++g) {
      for (std::size_t p = 0; p < policies; ++p) {
        const std::size_t global = g * policies + p;
        if (!rows[global].empty()) continue;
        runner.add_stream(grid[g], named_policy(spec_.policies[p]));
        global_of.push_back(global);
      }
    }
    runner.run_streams([&](std::size_t cell, const StreamResult& result) {
      const std::size_t global = global_of[cell];
      record(global, render_stream_row(spec_, axes[global / policies], result));
    });
  }

  for (std::size_t i = 0; i < total; ++i) {
    if (rows[i].empty()) {
      throw SuiteError("", "internal: cell " + std::to_string(i) + " (" + names[i] +
                               ") produced no row");
    }
  }
  return rows;
}

}  // namespace rdcn
