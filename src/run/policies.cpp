#include "run/policies.hpp"

#include <stdexcept>

#include "baseline/dispatchers.hpp"
#include "baseline/schedulers.hpp"
#include "core/alg.hpp"

namespace rdcn {

namespace {

PolicyFactory jsq_with(const std::string& name,
                       std::function<std::unique_ptr<SchedulePolicy>(const Topology&)> make) {
  return PolicyFactory{name, [] { return std::make_unique<JsqDispatcher>(); },
                       std::move(make)};
}

PolicyFactory stable_with(const std::string& name,
                          std::function<std::unique_ptr<DispatchPolicy>()> make) {
  return PolicyFactory{name, std::move(make), [](const Topology&) {
                         return std::make_unique<StableMatchingScheduler>();
                       }};
}

}  // namespace

PolicyFactory alg_policy() {
  return PolicyFactory{
      "alg",
      [] { return std::make_unique<ImpactDispatcher>(); },
      [](const Topology&) { return std::make_unique<StableMatchingScheduler>(); },
  };
}

PolicyFactory named_policy(const std::string& name) {
  if (name == "alg") return alg_policy();
  // Baseline schedulers, all under JSQ dispatch (EXP-B1's pairing).
  if (name == "maxweight") {
    return jsq_with(name,
                    [](const Topology&) { return std::make_unique<MaxWeightScheduler>(); });
  }
  if (name == "islip") {
    return jsq_with(name,
                    [](const Topology& t) { return std::make_unique<IslipScheduler>(t); });
  }
  if (name == "rotor") {
    return jsq_with(name,
                    [](const Topology& t) { return std::make_unique<RotorScheduler>(t); });
  }
  if (name == "random") {
    return jsq_with(name, [](const Topology&) {
      return std::make_unique<RandomMaximalScheduler>(99);
    });
  }
  if (name == "fifo") {
    return jsq_with(name, [](const Topology&) { return std::make_unique<FifoScheduler>(); });
  }
  // Dispatcher ablations, all under stable matching (EXP-B2's pairing).
  if (name == "impact") {
    return stable_with(name, [] { return std::make_unique<ImpactDispatcher>(); });
  }
  if (name == "random-dispatch") {
    return stable_with(name, [] { return std::make_unique<RandomDispatcher>(5); });
  }
  if (name == "round-robin") {
    return stable_with(name, [] { return std::make_unique<RoundRobinDispatcher>(); });
  }
  if (name == "jsq") {
    return stable_with(name, [] { return std::make_unique<JsqDispatcher>(); });
  }
  if (name == "min-delay") {
    return stable_with(name, [] { return std::make_unique<MinDelayDispatcher>(); });
  }
  if (name == "direct-only") {
    return stable_with(name, [] { return std::make_unique<DirectOnlyDispatcher>(); });
  }
  throw std::invalid_argument("unknown policy '" + name + "'");
}

std::vector<std::string> policy_names() {
  return {"alg",    "maxweight", "islip",          "rotor",       "random",
          "fifo",   "impact",    "random-dispatch", "round-robin", "jsq",
          "min-delay", "direct-only"};
}

std::vector<PolicyFactory> scheduler_baselines() {
  std::vector<PolicyFactory> policies;
  policies.push_back(alg_policy());
  policies.back().name = "ALG";
  for (const char* name : {"maxweight", "islip", "rotor", "random", "fifo"}) {
    policies.push_back(named_policy(name));
  }
  policies[1].name = "MaxWeight";
  policies[2].name = "iSLIP";
  policies[3].name = "Rotor";
  policies[4].name = "RandomMaximal";
  policies[5].name = "FIFO";
  return policies;
}

std::vector<PolicyFactory> dispatcher_ablations() {
  std::vector<PolicyFactory> policies;
  for (const char* name :
       {"impact", "random-dispatch", "round-robin", "jsq", "min-delay", "direct-only"}) {
    policies.push_back(named_policy(name));
  }
  policies[0].name = "Impact (ALG)";
  policies[1].name = "Random";
  policies[2].name = "RoundRobin";
  policies[3].name = "JSQ";
  policies[4].name = "MinDelay";
  policies[5].name = "DirectOnly";
  return policies;
}

}  // namespace rdcn
