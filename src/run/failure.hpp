#pragma once

// Failure handling for the runner layer (BatchRunner / SuiteRunner):
// the fail_fast-vs-isolate policy, the structured per-cell error record
// isolate mode reports instead of rethrowing, the retry/deadline knobs,
// and the test-only fault-injection hook that lets tests force chosen
// cells to throw, hang (until their deadline cancels them) or crash --
// the runner-level counterpart of PR 9's engine failure injection.

#include <cstddef>
#include <functional>
#include <string>

#include "util/fault.hpp"

namespace rdcn {

/// What a throwing cell does to its siblings.
enum class FailurePolicy {
  /// Historical behavior: the first failure (lowest cell, lowest
  /// repetition) is rethrown after the pool drains. Additional failed
  /// cells are counted in the rethrown message ("and N more cells
  /// failed") and each suppressed message is logged to stderr.
  FailFast,
  /// A failing cell becomes a structured error record (CellError) on its
  /// result; siblings are unaffected and their outcomes are bit-identical
  /// to a fault-free run.
  Isolate,
};

/// Structured failure record of one cell (ScenarioResult::error /
/// StreamResult::error). When several repetitions fail, the lowest
/// repetition's failure is reported, so the record is deterministic
/// regardless of worker scheduling.
struct CellError {
  bool failed = false;
  std::string type;     ///< demangled exception class ("rdcn::CancelledError")
  std::string message;  ///< what() of the reported exception
  std::size_t repetition = 0;  ///< repetition the reported failure came from
  int attempts = 0;     ///< attempts consumed by that repetition (>= 1)
};

/// Test-only fault injection: invoked at the start of every repetition
/// attempt with the cell name, repetition index, and the attempt's cancel
/// token (null when no deadline is armed). Throwing from the hook fails
/// the attempt exactly like the simulation throwing would.
using FaultHook = std::function<void(const std::string& cell, std::size_t repetition,
                                     const CancelToken* cancel)>;

/// Per-run fault-tolerance configuration of a BatchRunner / SuiteRunner.
struct RunPolicy {
  FailurePolicy failure = FailurePolicy::FailFast;
  /// Wall-clock deadline per repetition attempt (the cell-level bound:
  /// a cell of R repetitions gets R independent deadlines). 0 = none.
  /// Cancellation is cooperative -- the engine checks at step boundaries
  /// -- so cells stop at the next step, not mid-step.
  double deadline_ms = 0.0;
  /// Total attempts per repetition for transient failures (deadline,
  /// TransientError). Deterministic failures (logic_error, AuditFailure,
  /// engine contract violations) never retry. Retries re-run the same
  /// seed, so a successful retry is bit-identical to an untroubled run.
  int max_attempts = 1;
  /// Backoff before retry k is base * 2^(k-1) ms, capped at 1s.
  double backoff_base_ms = 10.0;
  FaultHook fault_hook;  ///< test-only; empty in production
};

}  // namespace rdcn
