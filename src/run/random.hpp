#pragma once

// Random spec generation for the fuzz driver (tools/rdcn_fuzz) and the
// differential checker's tests: one seed deterministically expands into a
// small ScenarioSpec / StreamSpec drawn from the full grid the repo
// supports -- topology shapes (two-tier with varying density, delays,
// attach delays, hybrid fixed links; crossbars), every pair-skew and
// weight distribution, and the engine's speedup / endpoint-capacity /
// reconfiguration-delay extensions. Specs are sized for checking (tens of
// packets, thousands of streamed packets at most), so a sweep of hundreds
// stays fast; check::minimize_seed re-derives the identical spec from the
// seed when shrinking a failure.

#include <cstdint>

#include "run/scenario.hpp"
#include "run/stream.hpp"

namespace rdcn {

/// Deterministic small random batch scenario for seed. base_seed is set so
/// ScenarioRunner(spec).instance(spec.base_seed) is the canonical instance.
ScenarioSpec random_scenario_spec(std::uint64_t seed);

/// Deterministic small random streaming spec for seed (Poisson or on/off
/// arrivals, rho spanning light load to overload with a step cap).
StreamSpec random_stream_spec(std::uint64_t seed);

}  // namespace rdcn
