#include "run/scenario.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace rdcn {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  // splitmix-style finalizer; keeps distinct (seed, salt) pairs from
  // colliding even when callers use small consecutive integers.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Topology make_topology(const TopologySpec& spec, std::uint64_t rep_seed) {
  Rng rng(spec.fixed_wiring ? mix_seed(1, spec.seed_salt)
                            : mix_seed(rep_seed, spec.seed_salt));
  switch (spec.kind) {
    case TopologySpec::Kind::Crossbar:
      return build_crossbar(spec.crossbar_ports);
    case TopologySpec::Kind::TwoTier:
      return build_two_tier(spec.two_tier, rng);
    case TopologySpec::Kind::Oversubscribed:
      return build_oversubscribed(spec.oversubscribed, rng);
    case TopologySpec::Kind::Expander:
      return build_expander(spec.expander, rng);
    case TopologySpec::Kind::Rotor:
      return build_rotor(spec.rotor);
  }
  throw std::logic_error("unknown TopologySpec kind");
}

const char* to_string(TopologySpec::Kind kind) {
  switch (kind) {
    case TopologySpec::Kind::TwoTier: return "two_tier";
    case TopologySpec::Kind::Crossbar: return "crossbar";
    case TopologySpec::Kind::Oversubscribed: return "oversubscribed";
    case TopologySpec::Kind::Expander: return "expander";
    case TopologySpec::Kind::Rotor: return "rotor";
  }
  return "unknown";
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {
  if (spec_.repetitions == 0) throw std::invalid_argument("scenario needs >= 1 repetition");
}

Instance ScenarioRunner::instance(std::uint64_t rep_seed) const {
  if (spec_.make_instance) return spec_.make_instance(rep_seed);
  const Topology topology = make_topology(spec_.topology, rep_seed);
  WorkloadConfig workload = spec_.workload;
  workload.seed = rep_seed;
  return generate_workload(topology, workload);
}

RunResult ScenarioRunner::run_once(const PolicyFactory& policy,
                                   std::uint64_t rep_seed) const {
  return run_once(policy, instance(rep_seed));
}

RunResult ScenarioRunner::run_once(const PolicyFactory& policy,
                                   const Instance& instance) const {
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(instance.topology());
  return simulate(instance, *dispatcher, *scheduler, spec_.engine);
}

std::vector<std::uint64_t> ScenarioRunner::seeds() const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(spec_.repetitions);
  for (std::size_t i = 0; i < spec_.repetitions; ++i) {
    seeds.push_back(spec_.base_seed + static_cast<std::uint64_t>(i));
  }
  return seeds;
}

void ScenarioRunner::each_instance(
    const std::function<void(std::uint64_t, const Instance&)>& fn) const {
  for (const std::uint64_t seed : seeds()) fn(seed, instance(seed));
}

RepetitionOutcome ScenarioRunner::run_repetition(const PolicyFactory& policy,
                                                 std::uint64_t rep_seed,
                                                 const RepMetric& metric,
                                                 const CancelToken* cancel) const {
  const Instance inst = instance(rep_seed);
  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(inst.topology());
  EngineOptions engine_options = spec_.engine;
  engine_options.cancel = cancel;

  const auto start = std::chrono::steady_clock::now();
  const RunResult run = simulate(inst, *dispatcher, *scheduler, engine_options);
  const auto stop = std::chrono::steady_clock::now();

  RepetitionOutcome outcome;
  outcome.seed = rep_seed;
  outcome.total_cost = run.total_cost;
  outcome.reconfig_cost = run.reconfig_cost;
  outcome.fixed_cost = run.fixed_cost;
  outcome.makespan = run.makespan;
  outcome.steps_simulated = run.steps_simulated;
  outcome.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  outcome.metric = metric ? metric(inst, run) : run.total_cost;
  outcome.probe = run.probe;
  return outcome;
}

ScenarioResult ScenarioRunner::run(const PolicyFactory& policy, RepMetric metric) const {
  ScenarioResult result;
  result.scenario = spec_.name;
  result.policy = policy.name;
  for (const std::uint64_t seed : seeds()) {
    result.repetitions.push_back(run_repetition(policy, seed, metric));
    const RepetitionOutcome& rep = result.repetitions.back();
    result.cost.add(rep.total_cost);
    result.metric.add(rep.metric);
    result.wall_ms.add(rep.wall_ms);
    merge_report(result.probe, rep.probe);
  }
  return result;
}

}  // namespace rdcn
