#include "run/batch.hpp"

#include <exception>
#include <mutex>
#include <utility>

namespace rdcn {

std::size_t BatchRunner::add(ScenarioSpec spec, PolicyFactory policy, RepMetric metric) {
  cells_.push_back(Cell{ScenarioRunner(std::move(spec)), std::move(policy),
                        std::move(metric)});
  return cells_.size() - 1;
}

void BatchRunner::add_grid(const ScenarioSpec& spec,
                           const std::vector<PolicyFactory>& policies) {
  for (const PolicyFactory& policy : policies) add(spec, policy);
}

std::vector<ScenarioResult> BatchRunner::run() {
  // Preassign every repetition a slot, then fan the (cell, repetition)
  // tasks out; tasks only write their own slot, so no locking is needed.
  std::vector<std::vector<RepetitionOutcome>> outcomes(cells_.size());
  struct Task {
    std::size_t cell;
    std::size_t rep;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const auto seeds = cells_[c].runner.seeds();
    outcomes[c].resize(seeds.size());
    for (std::size_t r = 0; r < seeds.size(); ++r) {
      tasks.push_back(Task{c, r, seeds[r]});
    }
  }
  // Pool tasks must not throw (std::terminate otherwise), but engines do
  // on documented paths (starvation guard, scheduler contract violations):
  // capture the first failure and rethrow it to the caller.
  std::exception_ptr failure;
  std::mutex failure_mutex;
  for (const Task& task : tasks) {
    pool_.submit([this, task, &outcomes, &failure, &failure_mutex] {
      try {
        const Cell& cell = cells_[task.cell];
        outcomes[task.cell][task.rep] =
            cell.runner.run_repetition(cell.policy, task.seed, cell.metric);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    });
  }
  pool_.wait_idle();
  if (failure) {
    cells_.clear();
    std::rethrow_exception(failure);
  }

  std::vector<ScenarioResult> results;
  results.reserve(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    ScenarioResult result;
    result.scenario = cells_[c].runner.spec().name;
    result.policy = cells_[c].policy.name;
    result.repetitions = std::move(outcomes[c]);
    for (const RepetitionOutcome& rep : result.repetitions) {
      result.cost.add(rep.total_cost);
      result.metric.add(rep.metric);
      result.wall_ms.add(rep.wall_ms);
      merge_report(result.probe, rep.probe);
    }
    results.push_back(std::move(result));
  }
  cells_.clear();
  return results;
}

std::size_t BatchRunner::add_stream(StreamSpec spec, PolicyFactory policy) {
  stream_cells_.push_back(StreamCell{StreamRunner(std::move(spec)), std::move(policy)});
  return stream_cells_.size() - 1;
}

void BatchRunner::add_stream_grid(const StreamSpec& spec,
                                  const std::vector<PolicyFactory>& policies) {
  for (const PolicyFactory& policy : policies) add_stream(spec, policy);
}

std::vector<StreamResult> BatchRunner::run_streams() {
  std::vector<std::vector<StreamRepOutcome>> outcomes(stream_cells_.size());
  struct Task {
    std::size_t cell;
    std::size_t rep;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < stream_cells_.size(); ++c) {
    const auto seeds = stream_cells_[c].runner.seeds();
    outcomes[c].resize(seeds.size());
    for (std::size_t r = 0; r < seeds.size(); ++r) {
      tasks.push_back(Task{c, r, seeds[r]});
    }
  }
  std::exception_ptr failure;
  std::mutex failure_mutex;
  for (const Task& task : tasks) {
    pool_.submit([this, task, &outcomes, &failure, &failure_mutex] {
      try {
        const StreamCell& cell = stream_cells_[task.cell];
        outcomes[task.cell][task.rep] = cell.runner.run_repetition(cell.policy, task.seed);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    });
  }
  pool_.wait_idle();
  if (failure) {
    stream_cells_.clear();
    std::rethrow_exception(failure);
  }

  std::vector<StreamResult> results;
  results.reserve(stream_cells_.size());
  for (std::size_t c = 0; c < stream_cells_.size(); ++c) {
    results.push_back(
        stream_cells_[c].runner.aggregate(stream_cells_[c].policy, std::move(outcomes[c])));
  }
  stream_cells_.clear();
  return results;
}

}  // namespace rdcn
