#include "run/batch.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace rdcn {

namespace {

/// Per-cell failure ledger shared by a run's tasks. Every failing
/// repetition records; the lowest repetition wins, so the reported error
/// is deterministic regardless of worker scheduling (which is also why
/// sibling repetitions of a failed cell keep running: skipping them would
/// make the winner a race).
class FailureLedger {
 public:
  explicit FailureLedger(std::size_t cells) : cells_(cells) {}

  void record(std::size_t cell, std::size_t rep, const std::exception_ptr& failure,
              int attempts) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = cells_[cell];
    if (slot.error.failed && slot.error.repetition <= rep) return;
    const FailureInfo info = describe_failure(failure);
    slot.error = CellError{true, info.type, info.message, rep, attempts};
    slot.exception = failure;
  }

  bool failed(std::size_t cell) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cells_[cell].error.failed;
  }

  CellError error(std::size_t cell) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cells_[cell].error;
  }

  std::exception_ptr exception(std::size_t cell) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cells_[cell].exception;
  }

  /// Indices of failed cells, ascending (post-drain: no lock contention).
  std::vector<std::size_t> failed_cells() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> failed;
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      if (cells_[c].error.failed) failed.push_back(c);
    }
    return failed;
  }

 private:
  struct Slot {
    CellError error;
    std::exception_ptr exception;
  };
  mutable std::mutex mutex_;
  std::vector<Slot> cells_;
};

/// One repetition attempt loop: arm the deadline, run the fault hook and
/// the repetition, classify on throw, back off and re-run the same seed
/// while the failure is transient and budget remains. Returns true on
/// success; definitive failures land in the ledger.
template <typename RunFn>
bool run_with_retries(const RunPolicy& policy, DeadlineWatchdog* watchdog,
                      const std::string& cell_name, std::size_t cell,
                      std::size_t rep, FailureLedger& ledger, const RunFn& run_rep) {
  int attempt = 0;
  for (;;) {
    ++attempt;
    CancelToken token;
    try {
      DeadlineWatchdog::Guard guard;
      const CancelToken* cancel = nullptr;
      if (policy.deadline_ms > 0 && watchdog != nullptr) {
        guard = watchdog->arm(token, policy.deadline_ms);
        cancel = &token;
      }
      if (policy.fault_hook) policy.fault_hook(cell_name, rep, cancel);
      run_rep(cancel);
      return true;
    } catch (...) {
      const std::exception_ptr failure = std::current_exception();
      if (is_transient_failure(failure) && attempt < policy.max_attempts) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            backoff_delay_ms(policy.backoff_base_ms, attempt)));
        continue;  // same seed: a successful retry is bit-identical
      }
      ledger.record(cell, rep, failure, attempt);
      return false;
    }
  }
}

/// fail_fast post-drain reporting: logs every suppressed failure, then
/// rethrows the primary (lowest cell, lowest repetition) -- unwrapped
/// when it is the only one, wrapped in BatchError with the suppressed
/// count otherwise. `labels` is parallel to `failed`, materialized by the
/// caller before it clears the cell queue.
[[noreturn]] inline void throw_fail_fast(const FailureLedger& ledger,
                                         const std::vector<std::size_t>& failed,
                                         const std::vector<std::string>& labels) {
  for (std::size_t i = 1; i < failed.size(); ++i) {
    const CellError error = ledger.error(failed[i]);
    std::fprintf(stderr, "batch: suppressed failure in cell %s (rep %zu, %s): %s\n",
                 labels[i].c_str(), error.repetition, error.type.c_str(),
                 error.message.c_str());
  }
  if (failed.size() == 1) std::rethrow_exception(ledger.exception(failed.front()));
  const CellError primary = ledger.error(failed.front());
  const std::size_t more = failed.size() - 1;
  throw BatchError(primary.message + " (and " + std::to_string(more) + " more cell" +
                   (more > 1 ? "s" : "") + " failed)");
}

}  // namespace

std::size_t BatchRunner::add(ScenarioSpec spec, PolicyFactory policy, RepMetric metric) {
  cells_.push_back(Cell{ScenarioRunner(std::move(spec)), std::move(policy),
                        std::move(metric)});
  return cells_.size() - 1;
}

void BatchRunner::add_grid(const ScenarioSpec& spec,
                           const std::vector<PolicyFactory>& policies) {
  for (const PolicyFactory& policy : policies) add(spec, policy);
}

std::vector<ScenarioResult> BatchRunner::run(const CellDone& on_cell_done) {
  // Preassign every repetition a slot, then fan the (cell, repetition)
  // tasks out; tasks only write their own slot, so outcome writes need no
  // locking. The last repetition of a cell (acq_rel countdown) folds the
  // cell's aggregate in seed order -- deterministic regardless of worker
  // scheduling -- and fires the completion callback.
  const std::size_t num_cells = cells_.size();
  std::vector<std::vector<RepetitionOutcome>> outcomes(num_cells);
  std::vector<ScenarioResult> results(num_cells);
  FailureLedger ledger(num_cells);
  const auto remaining = std::make_unique<std::atomic<std::size_t>[]>(num_cells);
  const bool isolate = policy_.failure == FailurePolicy::Isolate;
  if (policy_.deadline_ms > 0 && !watchdog_) {
    watchdog_ = std::make_unique<DeadlineWatchdog>();
  }

  const auto cell_label = [this](std::size_t c) {
    return cells_[c].runner.spec().name + " x " + cells_[c].policy.name;
  };
  const auto finalize_cell = [&](std::size_t c) {
    ScenarioResult& result = results[c];
    result.scenario = cells_[c].runner.spec().name;
    result.policy = cells_[c].policy.name;
    if (ledger.failed(c)) {
      result.error = ledger.error(c);
    } else {
      result.repetitions = std::move(outcomes[c]);
      for (const RepetitionOutcome& rep : result.repetitions) {
        result.cost.add(rep.total_cost);
        result.metric.add(rep.metric);
        result.wall_ms.add(rep.wall_ms);
        merge_report(result.probe, rep.probe);
      }
    }
    if (on_cell_done && (!result.error.failed || isolate)) on_cell_done(c, result);
  };

  struct Task {
    std::size_t cell;
    std::size_t rep;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < num_cells; ++c) {
    const auto seeds = cells_[c].runner.seeds();
    outcomes[c].resize(seeds.size());
    remaining[c].store(seeds.size(), std::memory_order_relaxed);
    for (std::size_t r = 0; r < seeds.size(); ++r) {
      tasks.push_back(Task{c, r, seeds[r]});
    }
    if (seeds.empty()) finalize_cell(c);
  }

  // Pool tasks must not throw (std::terminate otherwise), but engines do
  // on documented paths (starvation guard, scheduler contract violations,
  // deadline cancellation): every definitive failure lands in the ledger
  // and the failure policy decides after the drain.
  for (const Task& task : tasks) {
    pool_.submit([this, task, &outcomes, &ledger, &remaining, &finalize_cell,
                  &cell_label] {
      const Cell& cell = cells_[task.cell];
      const std::string name = policy_.fault_hook ? cell_label(task.cell) : std::string();
      run_with_retries(policy_, watchdog_.get(), name, task.cell, task.rep, ledger,
                       [&](const CancelToken* cancel) {
                         outcomes[task.cell][task.rep] = cell.runner.run_repetition(
                             cell.policy, task.seed, cell.metric, cancel);
                       });
      if (remaining[task.cell].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finalize_cell(task.cell);
      }
    });
  }
  pool_.wait_idle();

  const std::vector<std::size_t> failed = ledger.failed_cells();
  if (!failed.empty() && !isolate) {
    std::vector<std::string> labels;
    labels.reserve(failed.size());
    for (const std::size_t c : failed) labels.push_back(cell_label(c));
    cells_.clear();
    throw_fail_fast(ledger, failed, labels);
  }
  cells_.clear();
  return results;
}

std::size_t BatchRunner::add_stream(StreamSpec spec, PolicyFactory policy) {
  stream_cells_.push_back(StreamCell{StreamRunner(std::move(spec)), std::move(policy)});
  return stream_cells_.size() - 1;
}

void BatchRunner::add_stream_grid(const StreamSpec& spec,
                                  const std::vector<PolicyFactory>& policies) {
  for (const PolicyFactory& policy : policies) add_stream(spec, policy);
}

std::vector<StreamResult> BatchRunner::run_streams(const StreamCellDone& on_cell_done) {
  const std::size_t num_cells = stream_cells_.size();
  std::vector<std::vector<StreamRepOutcome>> outcomes(num_cells);
  std::vector<StreamResult> results(num_cells);
  FailureLedger ledger(num_cells);
  const auto remaining = std::make_unique<std::atomic<std::size_t>[]>(num_cells);
  const bool isolate = policy_.failure == FailurePolicy::Isolate;
  if (policy_.deadline_ms > 0 && !watchdog_) {
    watchdog_ = std::make_unique<DeadlineWatchdog>();
  }

  const auto cell_label = [this](std::size_t c) {
    return stream_cells_[c].runner.spec().name + " x " + stream_cells_[c].policy.name;
  };
  const auto finalize_cell = [&](std::size_t c) {
    StreamResult& result = results[c];
    if (ledger.failed(c)) {
      result.scenario = stream_cells_[c].runner.spec().name;
      result.policy = stream_cells_[c].policy.name;
      result.error = ledger.error(c);
    } else {
      result = stream_cells_[c].runner.aggregate(stream_cells_[c].policy,
                                                 std::move(outcomes[c]));
    }
    if (on_cell_done && (!result.error.failed || isolate)) on_cell_done(c, result);
  };

  struct Task {
    std::size_t cell;
    std::size_t rep;
    std::uint64_t seed;
  };
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < num_cells; ++c) {
    const auto seeds = stream_cells_[c].runner.seeds();
    outcomes[c].resize(seeds.size());
    remaining[c].store(seeds.size(), std::memory_order_relaxed);
    for (std::size_t r = 0; r < seeds.size(); ++r) {
      tasks.push_back(Task{c, r, seeds[r]});
    }
    if (seeds.empty()) finalize_cell(c);
  }

  for (const Task& task : tasks) {
    pool_.submit([this, task, &outcomes, &ledger, &remaining, &finalize_cell,
                  &cell_label] {
      const StreamCell& cell = stream_cells_[task.cell];
      const std::string name = policy_.fault_hook ? cell_label(task.cell) : std::string();
      run_with_retries(policy_, watchdog_.get(), name, task.cell, task.rep, ledger,
                       [&](const CancelToken* cancel) {
                         outcomes[task.cell][task.rep] =
                             cell.runner.run_repetition(cell.policy, task.seed, cancel);
                       });
      if (remaining[task.cell].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finalize_cell(task.cell);
      }
    });
  }
  pool_.wait_idle();

  const std::vector<std::size_t> failed = ledger.failed_cells();
  if (!failed.empty() && !isolate) {
    std::vector<std::string> labels;
    labels.reserve(failed.size());
    for (const std::size_t c : failed) labels.push_back(cell_label(c));
    stream_cells_.clear();
    throw_fail_fast(ledger, failed, labels);
  }
  stream_cells_.clear();
  return results;
}

}  // namespace rdcn
