#pragma once

// The scenario layer: one declarative description of "which network, which
// traffic, which engine options, how many repetitions" that every front
// end (bench drivers, examples, CLI, tests) feeds to a ScenarioRunner
// instead of hand-rolling instance construction. A scenario is
// deterministic given its seeds: repetition i regenerates the same
// instance bit-for-bit, so policies compared on the same spec are paired
// by construction.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/builders.hpp"
#include "net/instance.hpp"
#include "run/failure.hpp"
#include "run/policies.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "workload/generator.hpp"

namespace rdcn {

/// How to build the network for one repetition. The kind selects which of
/// the config members below is consulted (the topology zoo of
/// net/builders.hpp); all front ends -- make_topology, the run/random fuzz
/// grids, suite files and the streaming path -- draw from the same grid.
struct TopologySpec {
  enum class Kind { TwoTier, Crossbar, Oversubscribed, Expander, Rotor };
  Kind kind = Kind::TwoTier;
  TwoTierConfig two_tier{};              ///< used when kind == TwoTier
  NodeIndex crossbar_ports = 8;          ///< used when kind == Crossbar
  OversubscribedConfig oversubscribed{};  ///< used when kind == Oversubscribed
  ExpanderConfig expander{};             ///< used when kind == Expander
  RotorConfig rotor{};                   ///< used when kind == Rotor
  /// Salt mixed into the wiring Rng, so scenarios can vary the wiring
  /// independently of the workload seed.
  std::uint64_t seed_salt = 0;
  /// true: one wiring (from the salt alone) shared by all repetitions;
  /// false: every repetition rewires from (repetition seed, salt).
  /// Crossbar and Rotor wirings are deterministic, so both settings agree.
  bool fixed_wiring = false;
};

/// Registry-style names of the topology kinds ("two_tier", "crossbar",
/// "oversubscribed", "expander", "rotor"); shared by suite files, CLI
/// output and test parameterization.
const char* to_string(TopologySpec::Kind kind);

/// Builds the topology for one repetition of the spec.
Topology make_topology(const TopologySpec& spec, std::uint64_t rep_seed);

struct ScenarioSpec {
  std::string name;
  TopologySpec topology{};
  /// Traffic for each repetition; workload.seed is overridden with the
  /// repetition seed.
  WorkloadConfig workload{};
  EngineOptions engine{};
  /// Repetition seeds are base_seed, base_seed + 1, ...
  std::uint64_t base_seed = 1;
  std::size_t repetitions = 1;
  /// Escape hatch for bespoke instances (hand-built topologies, replayed
  /// files, flow expansions): when set, topology/workload above are
  /// ignored and this builds the instance for a repetition seed.
  std::function<Instance(std::uint64_t rep_seed)> make_instance;
};

/// One simulated repetition.
struct RepetitionOutcome {
  std::uint64_t seed = 0;
  double total_cost = 0.0;
  double reconfig_cost = 0.0;
  double fixed_cost = 0.0;
  Time makespan = 0;
  Time steps_simulated = 0;
  double wall_ms = 0.0;
  double metric = 0.0;  ///< custom metric (defaults to total_cost)
  ProbeReport probe;    ///< enabled iff the spec's engine options probe
};

/// Aggregated outcome of scenario x policy.
struct ScenarioResult {
  std::string scenario;
  std::string policy;
  std::vector<RepetitionOutcome> repetitions;
  Summary cost;     ///< total_cost across repetitions
  Summary metric;   ///< custom metric across repetitions
  Summary wall_ms;  ///< per-repetition engine wall clock
  ProbeReport probe;  ///< merged across repetitions (phase times summed)
  /// Set under FailurePolicy::Isolate when the cell failed; repetitions
  /// and the summaries above are then empty (a partial aggregate would
  /// silently misreport the cell).
  CellError error;
};

/// Optional per-repetition metric (e.g. ratio to a bound computed from the
/// instance); default records total_cost.
using RepMetric = std::function<double(const Instance&, const RunResult&)>;

/// Executes a ScenarioSpec: owns instance construction, policy wiring,
/// repetition, and metric aggregation.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);

  const ScenarioSpec& spec() const noexcept { return spec_; }

  /// The instance for one repetition (deterministic in rep_seed).
  Instance instance(std::uint64_t rep_seed) const;

  /// Runs one repetition and returns the full engine result.
  RunResult run_once(const PolicyFactory& policy, std::uint64_t rep_seed) const;

  /// Same, against an instance the caller already built (avoids
  /// regenerating it when both the instance and the run are needed).
  RunResult run_once(const PolicyFactory& policy, const Instance& instance) const;

  /// Runs every repetition under the policy; standard metrics.
  ScenarioResult run(const PolicyFactory& policy) const { return run(policy, nullptr); }

  /// Runs every repetition, additionally recording metric(instance, run).
  ScenarioResult run(const PolicyFactory& policy, RepMetric metric) const;

  /// Repetition seeds of this spec, in order.
  std::vector<std::uint64_t> seeds() const;

  /// Calls fn(seed, instance) for every repetition, instances built by the
  /// runner -- the hook for benches computing bespoke audits per instance.
  void each_instance(const std::function<void(std::uint64_t, const Instance&)>& fn) const;

 private:
  friend class BatchRunner;
  /// `cancel` (nullable) is handed to the engine, which throws
  /// CancelledError at the first step boundary after it fires -- the
  /// BatchRunner deadline path; the spec's own engine.cancel is ignored.
  RepetitionOutcome run_repetition(const PolicyFactory& policy, std::uint64_t rep_seed,
                                   const RepMetric& metric,
                                   const CancelToken* cancel = nullptr) const;

  ScenarioSpec spec_;
};

}  // namespace rdcn
