#pragma once

// The streaming counterpart of the scenario layer: one declarative
// description of "which network, which open-loop traffic at which rho,
// which engine options, how long to warm up and measure" that every front
// end (the steady-state bench, rdcn_cli stream, tests) feeds to a
// StreamRunner. Like ScenarioSpec, a stream is deterministic given its
// seeds: repetition i regenerates the identical arrival sequence, so
// policies compared on the same spec see the same traffic packet for
// packet. Unlike ScenarioRunner, nothing per-packet is retained: latencies
// fold into a log-bucket histogram and throughput/backlog into fixed
// windows, so a point can serve millions of packets in bounded memory.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "run/policies.hpp"
#include "run/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "traffic/source.hpp"
#include "util/stats.hpp"

namespace rdcn {

/// One stage of a time-staged dynamic scenario (gst-mprtp's PathStage
/// pattern): traffic overrides held for `duration` steps plus an engine
/// mutation applied atomically at the stage edge. Stage k begins at clock
/// T_k = 1 + sum of the previous durations (stage 0 starts the run); its
/// mutation and traffic regime govern every step with now() >= T_k.
struct StageSpec {
  /// Steps this stage holds; 0 = "to end of run", legal for the last stage
  /// only. When every duration is finite and the run outlives the schedule,
  /// the final stage's regime persists.
  Time duration = 0;
  /// Traffic overrides; negative = inherit the spec-level TrafficConfig.
  /// Overrides re-calibrate the arrival rate at stage entry (against the
  /// full healthy topology: rho is nominal load, failures are headwind).
  double rho = -1.0;
  double on_stay = -1.0;
  double off_stay = -1.0;
  /// Applied at stage entry (edge/rack kills and restores, speedup or
  /// capacity scaling, drop-vs-requeue for stranded packets).
  StageMutation mutation;
};

/// Per-stage recovery metrics of one staged repetition.
struct StageOutcome {
  Time start = 0;             ///< first step clock governed by this stage
  Time steps = 0;             ///< steps the engine actually ran in-stage
  std::uint64_t offered = 0;  ///< packets injected during the stage
  std::uint64_t served = 0;   ///< packets retired (completed) during the stage
  std::uint64_t dropped = 0;  ///< failure-injection drops during the stage
  std::uint64_t requeued = 0;
  std::size_t edges_killed = 0;    ///< at the stage edge (alive -> dead)
  std::size_t edges_restored = 0;
  std::size_t entry_backlog = 0;   ///< in-flight right after the mutation
  /// Steps until the entry backlog fully departed (served + dropped since
  /// entry >= entry_backlog): the time-to-drain recovery metric. -1 when
  /// the stage (or run) ended first; 0 when the stage opened empty.
  Time drain_steps = -1;
  double target_rate = 0.0;   ///< stage's re-calibrated lambda; 0 in replay
  LatencyHistogram latency;   ///< completions during the stage (warmup included)
};

struct StreamSpec {
  std::string name;
  TopologySpec topology{};
  TrafficConfig traffic{};
  /// record_trace and redispatch_queued are unavailable when streaming;
  /// max_steps == 0 lets the runner derive a generous starvation cap.
  EngineOptions engine{};
  /// Repetition seeds are base_seed, base_seed + 1, ... (each reseeds the
  /// wiring and the traffic draws, mirroring ScenarioSpec).
  std::uint64_t base_seed = 1;
  std::size_t repetitions = 1;
  /// Packets with id < warmup_packets are excluded from the latency
  /// statistics (transient); ids [warmup, warmup + measure) are measured.
  std::size_t warmup_packets = 1000;
  std::size_t measure_packets = 10000;
  /// Steps per StreamWindow of the throughput/backlog series.
  Time telemetry_window = 256;
  /// Hard step cap; 0 derives step_cap_factor x the expected arrival span
  /// from the calibrated rate. Hitting it marks the repetition truncated
  /// (overloaded runs keep growing backlog -- and per-step cost -- so the
  /// cap is what bounds a point's wall clock; the latency histogram then
  /// covers the measured packets that did retire).
  Time max_steps = 0;
  double step_cap_factor = 8.0;
  /// Escape hatch for trace replay: when set, topology/traffic above are
  /// ignored and this supplies (topology, recorded packets) for a
  /// repetition seed; the run then drains the trace to completion
  /// (target_rate stays 0 -- the step cap comes from default_max_steps,
  /// never from a division by the calibrated rate). Incompatible with
  /// `stages` (staged replay goes through Engine::run(schedule)).
  std::function<Instance(std::uint64_t rep_seed)> make_trace;
  /// Time-staged dynamic scenario; empty = the classic single-regime run
  /// (and the stage machinery costs nothing). See StageSpec.
  std::vector<StageSpec> stages;
};

/// One streamed repetition's folded outcome.
struct StreamRepOutcome {
  std::uint64_t seed = 0;
  std::uint64_t offered = 0;   ///< packets injected
  std::uint64_t served = 0;    ///< packets retired (fixed + reconfigurable)
  std::uint64_t measured = 0;  ///< retired packets inside the measure range
  /// Offered packets whose pair has no reconfigurable route (demand 0,
  /// fixed-layer only): they contribute nothing to measured_rho, so a
  /// large count means rho describes only part of the offered traffic
  /// (calibration rejects shapes past TrafficConfig::max_zero_demand_fraction).
  std::uint64_t zero_demand = 0;
  bool truncated = false;      ///< hit the step cap before the target
  Time steps = 0;
  Time makespan = 0;
  double target_rate = 0.0;    ///< calibrated lambda (packets/step); 0 for traces
  double offered_rate = 0.0;   ///< injected packets / arrival span
  double measured_rho = 0.0;   ///< offered chunk demand / (span * capacity)
  double throughput = 0.0;     ///< served packets / step
  double total_cost = 0.0;     ///< engine aggregate over the whole run
  double mean_latency = 0.0;   ///< mean over measured packets
  double mean_backlog = 0.0;
  std::uint64_t peak_backlog = 0;
  std::size_t peak_resident = 0;  ///< engine window peak: the memory bound
  double wall_ms = 0.0;
  std::uint64_t dropped = 0;           ///< failure-injection drops, whole run
  std::uint64_t dropped_measured = 0;  ///< drops inside the measure id range
  std::uint64_t requeued = 0;          ///< packets re-dispatched off dead edges
  LatencyHistogram latency;    ///< measured packets only (completion - arrival)
  std::vector<StreamWindow> series;
  std::vector<StageOutcome> stages;  ///< one per StageSpec; empty unstaged
  ProbeReport probe;  ///< enabled iff the spec's engine options probe
};

/// Aggregated outcome of stream x policy.
struct StreamResult {
  std::string scenario;
  std::string policy;
  std::vector<StreamRepOutcome> repetitions;
  /// Repetitions that hit the step cap before reaching their measurement
  /// target (overload). Their latencies are kept apart: `latency` merges
  /// converged repetitions only, `latency_truncated` merges the truncated
  /// ones -- a truncated rep's histogram covers just the survivors that
  /// retired before the cap (a censored sample biased low), so folding it
  /// into the converged summary would silently flatter overloaded points.
  /// Per-rep `truncated` flags are emitted in the JSON rows.
  /// throughput/backlog/rho/wall summaries still fold every repetition.
  std::size_t truncated_reps = 0;
  std::uint64_t zero_demand = 0;  ///< summed across repetitions
  std::uint64_t dropped = 0;      ///< failure-injection drops, summed
  std::uint64_t requeued = 0;     ///< summed across repetitions
  LatencyHistogram latency;            ///< merged across converged repetitions
  LatencyHistogram latency_truncated;  ///< merged across truncated repetitions
  Summary throughput;
  Summary backlog;     ///< mean_backlog across repetitions
  Summary measured_rho;
  Summary wall_ms;
  ProbeReport probe;  ///< merged across repetitions (phase times summed)
  /// Set under FailurePolicy::Isolate when the cell failed; repetitions
  /// and the aggregates above are then empty. See ScenarioResult::error.
  CellError error;
};

/// Executes a StreamSpec: topology + source construction, the open-loop
/// engine drive, warmup cutoff, and histogram/window folding.
class StreamRunner {
 public:
  explicit StreamRunner(StreamSpec spec);

  const StreamSpec& spec() const noexcept { return spec_; }

  /// Repetition seeds of this spec, in order.
  std::vector<std::uint64_t> seeds() const;

  /// Runs one repetition (deterministic in rep_seed). `cancel` (nullable)
  /// is handed to the engine and honored at step boundaries and stage
  /// entries; the spec's own engine.cancel is ignored.
  StreamRepOutcome run_repetition(const PolicyFactory& policy, std::uint64_t rep_seed,
                                  const CancelToken* cancel = nullptr) const;

  /// Runs every repetition under the policy and merges the statistics.
  StreamResult run(const PolicyFactory& policy) const;

  /// Folds repetition outcomes into a StreamResult (used by BatchRunner's
  /// fan-out so pooled and sequential runs aggregate identically).
  StreamResult aggregate(const PolicyFactory& policy,
                         std::vector<StreamRepOutcome> outcomes) const;

 private:
  StreamSpec spec_;
};

}  // namespace rdcn
