#include "run/stream.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

namespace rdcn {

StreamRunner::StreamRunner(StreamSpec spec) : spec_(std::move(spec)) {
  if (spec_.repetitions == 0) throw std::invalid_argument("stream needs >= 1 repetition");
  if (spec_.measure_packets == 0) {
    throw std::invalid_argument("stream needs measure_packets >= 1");
  }
  if (spec_.telemetry_window < 1) {
    throw std::invalid_argument("telemetry_window must be >= 1");
  }
  if (spec_.step_cap_factor <= 0.0) {
    throw std::invalid_argument("step_cap_factor must be > 0");
  }
  if (spec_.engine.record_trace || spec_.engine.redispatch_queued) {
    throw std::invalid_argument(
        "record_trace / redispatch_queued are unavailable when streaming");
  }
  if (spec_.engine.max_steps != 0) {
    throw std::invalid_argument(
        "set StreamSpec::max_steps (graceful truncation), not engine.max_steps "
        "(which would throw mid-run)");
  }
  if (!spec_.stages.empty()) {
    if (spec_.make_trace) {
      throw std::invalid_argument(
          "stages require generative traffic (staged trace replay goes through "
          "Engine::run(schedule))");
    }
    for (std::size_t i = 0; i < spec_.stages.size(); ++i) {
      const StageSpec& stage = spec_.stages[i];
      if (stage.duration < 0) {
        throw std::invalid_argument("stage duration must be >= 0");
      }
      if (stage.duration == 0 && i + 1 != spec_.stages.size()) {
        throw std::invalid_argument(
            "stage duration 0 (to end of run) is legal for the last stage only");
      }
      if (!(stage.rho > 0.0 || stage.rho == -1.0)) {
        throw std::invalid_argument("stage rho must be > 0 (or -1 to inherit)");
      }
      if (!(stage.on_stay == -1.0 || (stage.on_stay > 0.0 && stage.on_stay < 1.0)) ||
          !(stage.off_stay == -1.0 || (stage.off_stay > 0.0 && stage.off_stay < 1.0))) {
        throw std::invalid_argument(
            "stage on_stay/off_stay must lie in (0, 1) (or -1 to inherit)");
      }
    }
  }
}

std::vector<std::uint64_t> StreamRunner::seeds() const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(spec_.repetitions);
  for (std::size_t i = 0; i < spec_.repetitions; ++i) {
    seeds.push_back(spec_.base_seed + static_cast<std::uint64_t>(i));
  }
  return seeds;
}

StreamRepOutcome StreamRunner::run_repetition(const PolicyFactory& policy,
                                              std::uint64_t rep_seed,
                                              const CancelToken* cancel) const {
  StreamRepOutcome out;
  out.seed = rep_seed;

  const bool replay = static_cast<bool>(spec_.make_trace);
  const bool staged = !spec_.stages.empty();
  Topology topology;
  std::unique_ptr<TrafficSource> source;
  Time max_steps = spec_.max_steps;

  if (replay) {
    Instance instance = spec_.make_trace(rep_seed);
    const std::string error = instance.validate();
    if (!error.empty()) throw std::invalid_argument("invalid trace: " + error);
    // Trace replay: out.target_rate stays 0 by design, so the derived cap
    // below (a division by the rate) must never be taken on this path --
    // the cap is the batch engine's starvation bound instead, and the run
    // drains the trace to completion.
    if (max_steps == 0) {
      max_steps = default_max_steps(instance, spec_.engine.reconfig_delay);
    }
    topology = instance.topology();
    source = make_trace_source(instance.packets());
  } else {
    topology = make_topology(spec_.topology, rep_seed);
    TrafficConfig traffic = spec_.traffic;
    traffic.shape.seed = rep_seed;
    traffic.speedup_rounds = spec_.engine.speedup_rounds;
    out.target_rate = calibrate_rate(topology, traffic);
    // Staged runs build their source at each stage entry (stage 0 included)
    // so per-stage overrides re-calibrate; an override-free stage 0 draws
    // the identical sequence as this unstaged construction would.
    if (!staged) source = make_source(topology, traffic);
    if (max_steps == 0) {
      // calibrate_rate() > 0 by contract (it throws on zero-demand
      // shapes), so the max() below is a pure division guard -- the
      // target_rate == 0 trace path never reaches this branch.
      const auto total =
          static_cast<double>(spec_.warmup_packets + spec_.measure_packets);
      max_steps = static_cast<Time>(spec_.step_cap_factor * total /
                                    std::max(out.target_rate, 1e-9)) +
                  1024;
    }
  }

  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);

  const auto measure_begin = static_cast<PacketIndex>(spec_.warmup_packets);
  const auto measure_end =
      static_cast<PacketIndex>(spec_.warmup_packets + spec_.measure_packets);

  // Stage bookkeeping (all inert when the spec declares no stages).
  std::size_t cur_stage = 0;
  std::size_t next_stage = 0;
  std::vector<Time> stage_start;
  std::uint64_t stage_departed_base = 0;
  if (staged) {
    out.stages.resize(spec_.stages.size());
    stage_start.reserve(spec_.stages.size());
    Time t = 1;
    for (const StageSpec& s : spec_.stages) {
      stage_start.push_back(t);
      t += s.duration;
    }
  }
  PacketIndex next_id = 0;  ///< staged runs renumber per-stage source ids

  double latency_sum = 0.0;
  std::uint64_t served_this_step = 0;
  const auto sink = [&](RetiredPacket&& retired) {
    if (retired.outcome.dropped) {
      ++out.dropped;
      if (retired.id >= measure_begin && retired.id < measure_end) {
        ++out.dropped_measured;
      }
      if (staged) ++out.stages[cur_stage].dropped;
      return;
    }
    ++out.served;
    ++served_this_step;
    const Time latency = retired.outcome.completion - retired.arrival;
    if (staged) {
      StageOutcome& stage = out.stages[cur_stage];
      ++stage.served;
      stage.latency.add(latency);
    }
    if (retired.id >= measure_begin && retired.id < measure_end) {
      ++out.measured;
      out.latency.add(latency);
      latency_sum += static_cast<double>(latency);
    }
  };

  // spec_.engine.max_steps is 0 (enforced by the constructor): the runner
  // truncates gracefully at its own cap instead of letting the engine throw.
  EngineOptions engine_options = spec_.engine;
  engine_options.cancel = cancel;
  Engine engine(topology, *dispatcher, *scheduler, engine_options, sink);
  StreamTelemetry telemetry(spec_.telemetry_window);

  double offered_demand = 0.0;
  Time first_arrival = 0;
  Time last_arrival = 0;

  std::optional<Packet> pending;
  /// Pulls the next packet, rebasing a stage source's 1-based arrivals
  /// onto the run clock (stage k's arrival a lands at T_k - 1 + a).
  const auto pull = [&]() {
    pending = source->next();
    if (staged && pending) pending->arrival += stage_start[cur_stage] - 1;
  };

  /// Enters stage k at its edge: applies the mutation (drops flow through
  /// the sink into this stage's counters), re-derives the traffic regime
  /// with the stage's overrides, re-calibrates, and swaps the source. The
  /// previous source's peeked packet is discarded -- the old regime ends
  /// at the stage edge.
  const auto enter_stage = [&](std::size_t k) {
    // Stage entry does runner-side work (mutation, re-calibration, source
    // rebuild) outside any engine step, so it honors the cancel token at
    // the same boundary contract the engine does inside begin_step.
    if (cancel != nullptr && cancel->cancelled()) {
      throw CancelledError("stream run cancelled at stage entry (deadline exceeded)");
    }
    cur_stage = k;
    StageOutcome& stage = out.stages[k];
    stage.start = stage_start[k];
    const StageSpec& sspec = spec_.stages[k];
    const MutationStats stats = engine.apply_mutation(sspec.mutation);
    stage.edges_killed = stats.edges_killed;
    stage.edges_restored = stats.edges_restored;
    stage.requeued = stats.packets_requeued;
    out.requeued += stats.packets_requeued;
    TrafficConfig traffic = spec_.traffic;
    // Per-stage seed: stage 0 keeps the repetition seed (an override-free
    // stage 0 is bit-identical to the unstaged run); later stages fork.
    traffic.shape.seed =
        rep_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(k));
    traffic.speedup_rounds = engine.options().speedup_rounds;
    if (sspec.rho > 0.0) traffic.rho = sspec.rho;
    if (sspec.on_stay > 0.0) traffic.on_stay = sspec.on_stay;
    if (sspec.off_stay > 0.0) traffic.off_stay = sspec.off_stay;
    // Calibration runs against the full topology: rho is nominal load on
    // the healthy fabric, failures are headwind the metrics expose.
    stage.target_rate = calibrate_rate(topology, traffic);
    source = make_source(topology, traffic);
    pull();
    stage.entry_backlog = engine.in_flight();
    stage_departed_base = out.served + out.dropped;
    if (stage.entry_backlog == 0) stage.drain_steps = 0;
  };

  const auto start = std::chrono::steady_clock::now();
  if (source) pull();  // staged runs build their source at stage entry
  while (true) {
    while (staged && next_stage < spec_.stages.size() &&
           stage_start[next_stage] <= engine.now() + 1) {
      enter_stage(next_stage);
      ++next_stage;
    }
    if (replay ? (!pending && !engine.busy())
               : out.measured + out.dropped_measured >= spec_.measure_packets) {
      break;
    }
    if (!pending && !engine.busy()) break;  // generative source dried up
    if (out.steps >= max_steps) {
      out.truncated = true;
      break;
    }
    const Time* upcoming = pending ? &pending->arrival : nullptr;
    Time stage_bound = 0;
    if (staged && next_stage < spec_.stages.size()) {
      // Clamp the idle jump to the step before the next stage edge so the
      // loop head above applies its mutation and step T_k runs
      // post-mutation (mirrors Engine::run(schedule)).
      stage_bound = stage_start[next_stage] - 1;
      if (upcoming == nullptr || stage_bound < *upcoming) upcoming = &stage_bound;
    }
    engine.begin_step(upcoming);
    ++out.steps;
    std::uint64_t arrivals_this_step = 0;
    while (pending && pending->arrival == engine.now()) {
      if (out.offered == 0) first_arrival = pending->arrival;
      last_arrival = pending->arrival;
      const std::int64_t demand =
          cheapest_demand(topology, pending->source, pending->destination);
      if (demand == 0) ++out.zero_demand;  // fixed-layer only: invisible to rho
      offered_demand += static_cast<double>(demand);
      ++out.offered;
      ++arrivals_this_step;
      if (staged) {
        ++out.stages[cur_stage].offered;
        pending->id = next_id;  // global sequence across stage sources
      }
      ++next_id;
      engine.inject(*pending);
      pull();
    }
    engine.finish_step();
    telemetry.on_step(engine.now(), arrivals_this_step, served_this_step,
                      engine.in_flight(), engine.probe());
    // Reset here, not after begin_step: a stage mutation at the next loop
    // head can retire packets (requeue onto the fixed layer completes them
    // inside apply_mutation), and those serves belong to the step the
    // mutation governs -- resetting post-begin_step would wipe them and
    // telemetry would under-count served.
    served_this_step = 0;
    if (staged) {
      StageOutcome& stage = out.stages[cur_stage];
      ++stage.steps;
      if (stage.drain_steps < 0 &&
          out.served + out.dropped - stage_departed_base >= stage.entry_backlog) {
        stage.drain_steps = engine.now() - stage.start + 1;
      }
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();

  // A mutation applied right before a terminal break can retire packets
  // after the last on_step; fold them into the trailing window.
  telemetry.absorb_boundary(served_this_step);
  out.series = telemetry.finish();
  if (engine.probe() != nullptr) out.probe = engine.probe()->report();
  const RunResult& aggregates = engine.aggregates();
  out.total_cost = aggregates.total_cost;
  out.makespan = aggregates.makespan;
  out.peak_resident = engine.peak_resident_slots();
  out.peak_backlog = 0;
  double backlog_weighted = 0.0;
  for (const StreamWindow& window : out.series) {
    backlog_weighted += window.mean_backlog * static_cast<double>(window.steps);
    out.peak_backlog = std::max(out.peak_backlog, window.peak_backlog);
  }
  if (out.steps > 0) {
    out.mean_backlog = backlog_weighted / static_cast<double>(out.steps);
    out.throughput = static_cast<double>(out.served) / static_cast<double>(out.steps);
  }
  if (out.measured > 0) {
    out.mean_latency = latency_sum / static_cast<double>(out.measured);
  }
  if (out.offered > 0) {
    const auto span = static_cast<double>(last_arrival - first_arrival + 1);
    out.offered_rate = static_cast<double>(out.offered) / span;
    out.measured_rho =
        offered_demand / (span * service_capacity(topology, spec_.engine.speedup_rounds));
  }
  return out;
}

StreamResult StreamRunner::aggregate(const PolicyFactory& policy,
                                     std::vector<StreamRepOutcome> outcomes) const {
  StreamResult result;
  result.scenario = spec_.name;
  result.policy = policy.name;
  result.repetitions = std::move(outcomes);
  for (const StreamRepOutcome& rep : result.repetitions) {
    if (rep.truncated) ++result.truncated_reps;
    result.zero_demand += rep.zero_demand;
    result.dropped += rep.dropped;
    result.requeued += rep.requeued;
    // Truncated repetitions carry censored latency samples (only the
    // packets that retired before the cap); keep them out of the converged
    // summary and merge them into the parallel histogram instead.
    if (rep.truncated) {
      result.latency_truncated.merge(rep.latency);
    } else {
      result.latency.merge(rep.latency);
    }
    result.throughput.add(rep.throughput);
    result.backlog.add(rep.mean_backlog);
    result.measured_rho.add(rep.measured_rho);
    result.wall_ms.add(rep.wall_ms);
    merge_report(result.probe, rep.probe);
  }
  return result;
}

StreamResult StreamRunner::run(const PolicyFactory& policy) const {
  std::vector<StreamRepOutcome> outcomes;
  outcomes.reserve(spec_.repetitions);
  for (const std::uint64_t seed : seeds()) {
    outcomes.push_back(run_repetition(policy, seed));
  }
  return aggregate(policy, std::move(outcomes));
}

}  // namespace rdcn
