#include "run/stream.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

namespace rdcn {

StreamRunner::StreamRunner(StreamSpec spec) : spec_(std::move(spec)) {
  if (spec_.repetitions == 0) throw std::invalid_argument("stream needs >= 1 repetition");
  if (spec_.measure_packets == 0) {
    throw std::invalid_argument("stream needs measure_packets >= 1");
  }
  if (spec_.telemetry_window < 1) {
    throw std::invalid_argument("telemetry_window must be >= 1");
  }
  if (spec_.step_cap_factor <= 0.0) {
    throw std::invalid_argument("step_cap_factor must be > 0");
  }
  if (spec_.engine.record_trace || spec_.engine.redispatch_queued) {
    throw std::invalid_argument(
        "record_trace / redispatch_queued are unavailable when streaming");
  }
  if (spec_.engine.max_steps != 0) {
    throw std::invalid_argument(
        "set StreamSpec::max_steps (graceful truncation), not engine.max_steps "
        "(which would throw mid-run)");
  }
}

std::vector<std::uint64_t> StreamRunner::seeds() const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(spec_.repetitions);
  for (std::size_t i = 0; i < spec_.repetitions; ++i) {
    seeds.push_back(spec_.base_seed + static_cast<std::uint64_t>(i));
  }
  return seeds;
}

StreamRepOutcome StreamRunner::run_repetition(const PolicyFactory& policy,
                                              std::uint64_t rep_seed) const {
  StreamRepOutcome out;
  out.seed = rep_seed;

  const bool replay = static_cast<bool>(spec_.make_trace);
  Topology topology;
  std::unique_ptr<TrafficSource> source;
  Time max_steps = spec_.max_steps;

  if (replay) {
    Instance instance = spec_.make_trace(rep_seed);
    const std::string error = instance.validate();
    if (!error.empty()) throw std::invalid_argument("invalid trace: " + error);
    if (max_steps == 0) {
      max_steps = default_max_steps(instance, spec_.engine.reconfig_delay);
    }
    topology = instance.topology();
    source = make_trace_source(instance.packets());
  } else {
    topology = make_topology(spec_.topology, rep_seed);
    TrafficConfig traffic = spec_.traffic;
    traffic.shape.seed = rep_seed;
    traffic.speedup_rounds = spec_.engine.speedup_rounds;
    out.target_rate = calibrate_rate(topology, traffic);
    source = make_source(topology, traffic);
    if (max_steps == 0) {
      const auto total =
          static_cast<double>(spec_.warmup_packets + spec_.measure_packets);
      max_steps = static_cast<Time>(spec_.step_cap_factor * total /
                                    std::max(out.target_rate, 1e-9)) +
                  1024;
    }
  }

  auto dispatcher = policy.dispatcher();
  auto scheduler = policy.scheduler(topology);

  const auto measure_begin = static_cast<PacketIndex>(spec_.warmup_packets);
  const auto measure_end =
      static_cast<PacketIndex>(spec_.warmup_packets + spec_.measure_packets);

  double latency_sum = 0.0;
  std::uint64_t served_this_step = 0;
  const auto sink = [&](RetiredPacket&& retired) {
    ++out.served;
    ++served_this_step;
    if (retired.id >= measure_begin && retired.id < measure_end) {
      ++out.measured;
      const Time latency = retired.outcome.completion - retired.arrival;
      out.latency.add(latency);
      latency_sum += static_cast<double>(latency);
    }
  };

  // spec_.engine.max_steps is 0 (enforced by the constructor): the runner
  // truncates gracefully at its own cap instead of letting the engine throw.
  Engine engine(topology, *dispatcher, *scheduler, spec_.engine, sink);
  StreamTelemetry telemetry(spec_.telemetry_window);

  double offered_demand = 0.0;
  Time first_arrival = 0;
  Time last_arrival = 0;

  const auto start = std::chrono::steady_clock::now();
  std::optional<Packet> pending = source->next();
  while (true) {
    if (replay ? (!pending && !engine.busy())
               : out.measured >= spec_.measure_packets) {
      break;
    }
    if (!pending && !engine.busy()) break;  // generative source dried up
    if (out.steps >= max_steps) {
      out.truncated = true;
      break;
    }
    const Time* upcoming = pending ? &pending->arrival : nullptr;
    engine.begin_step(upcoming);
    ++out.steps;
    served_this_step = 0;
    std::uint64_t arrivals_this_step = 0;
    while (pending && pending->arrival == engine.now()) {
      if (out.offered == 0) first_arrival = pending->arrival;
      last_arrival = pending->arrival;
      const std::int64_t demand =
          cheapest_demand(topology, pending->source, pending->destination);
      if (demand == 0) ++out.zero_demand;  // fixed-layer only: invisible to rho
      offered_demand += static_cast<double>(demand);
      ++out.offered;
      ++arrivals_this_step;
      engine.inject(*pending);
      pending = source->next();
    }
    engine.finish_step();
    telemetry.on_step(engine.now(), arrivals_this_step, served_this_step,
                      engine.in_flight(), engine.probe());
  }
  const auto stop = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();

  out.series = telemetry.finish();
  if (engine.probe() != nullptr) out.probe = engine.probe()->report();
  const RunResult& aggregates = engine.aggregates();
  out.total_cost = aggregates.total_cost;
  out.makespan = aggregates.makespan;
  out.peak_resident = engine.peak_resident_slots();
  out.peak_backlog = 0;
  double backlog_weighted = 0.0;
  for (const StreamWindow& window : out.series) {
    backlog_weighted += window.mean_backlog * static_cast<double>(window.steps);
    out.peak_backlog = std::max(out.peak_backlog, window.peak_backlog);
  }
  if (out.steps > 0) {
    out.mean_backlog = backlog_weighted / static_cast<double>(out.steps);
    out.throughput = static_cast<double>(out.served) / static_cast<double>(out.steps);
  }
  if (out.measured > 0) {
    out.mean_latency = latency_sum / static_cast<double>(out.measured);
  }
  if (out.offered > 0) {
    const auto span = static_cast<double>(last_arrival - first_arrival + 1);
    out.offered_rate = static_cast<double>(out.offered) / span;
    out.measured_rho =
        offered_demand / (span * service_capacity(topology, spec_.engine.speedup_rounds));
  }
  return out;
}

StreamResult StreamRunner::aggregate(const PolicyFactory& policy,
                                     std::vector<StreamRepOutcome> outcomes) const {
  StreamResult result;
  result.scenario = spec_.name;
  result.policy = policy.name;
  result.repetitions = std::move(outcomes);
  for (const StreamRepOutcome& rep : result.repetitions) {
    if (rep.truncated) ++result.truncated_reps;
    result.zero_demand += rep.zero_demand;
    result.latency.merge(rep.latency);
    result.throughput.add(rep.throughput);
    result.backlog.add(rep.mean_backlog);
    result.measured_rho.add(rep.measured_rho);
    result.wall_ms.add(rep.wall_ms);
    merge_report(result.probe, rep.probe);
  }
  return result;
}

StreamResult StreamRunner::run(const PolicyFactory& policy) const {
  std::vector<StreamRepOutcome> outcomes;
  outcomes.reserve(spec_.repetitions);
  for (const std::uint64_t seed : seeds()) {
    outcomes.push_back(run_repetition(policy, seed));
  }
  return aggregate(policy, std::move(outcomes));
}

}  // namespace rdcn
