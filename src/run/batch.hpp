#pragma once

// BatchRunner: fans a grid of (scenario x policy) cells out over the
// shared thread pool, one task per repetition. Results are deterministic
// and independent of worker scheduling: every repetition's outcome lands
// in its preassigned slot, and aggregates are folded in seed order.
// Streamed (open-loop) cells ride the same pool via add_stream /
// run_streams, so latency-vs-load sweeps parallelize like batch grids.
//
// Fault tolerance (run/failure.hpp): set_policy configures what a
// throwing cell does to its siblings (fail_fast rethrows the first
// failure -- lowest cell, lowest repetition -- after the pool drains,
// counting and logging the suppressed ones; isolate turns each failed
// cell into a structured CellError on its result and leaves siblings
// bit-identical to a fault-free run), an optional per-repetition
// wall-clock deadline (cooperative: the engine cancels at the next step
// boundary), and bounded seed-preserving retry with exponential backoff
// for transient failures. The per-cell completion callbacks exist for
// crash-safe journaling: SuiteRunner appends each cell's row the moment
// its last repetition lands, not when the whole grid drains.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "run/failure.hpp"
#include "run/scenario.hpp"
#include "run/stream.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {

/// fail_fast terminal error when more than one cell failed: the primary
/// (lowest-cell, lowest-repetition) failure's message with the suppressed
/// count attached. A single failed cell rethrows its original exception
/// unwrapped, preserving the type.
class BatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BatchRunner {
 public:
  /// threads = 0 uses hardware concurrency.
  explicit BatchRunner(std::size_t threads = 0) : pool_(threads) {}

  /// Fault-tolerance configuration for subsequent run()/run_streams()
  /// calls (failure policy, deadline, retry budget, fault injection).
  void set_policy(RunPolicy policy) { policy_ = std::move(policy); }
  const RunPolicy& policy() const noexcept { return policy_; }

  /// Enqueues one cell; returns its index into run()'s result vector.
  std::size_t add(ScenarioSpec spec, PolicyFactory policy, RepMetric metric = nullptr);

  /// Convenience: one scenario against a whole policy grid.
  void add_grid(const ScenarioSpec& spec, const std::vector<PolicyFactory>& policies);

  std::size_t cells() const noexcept { return cells_.size(); }

  /// Invoked (from a worker thread) the moment a cell's last repetition
  /// lands, with its aggregated result -- the journaling hook. Calls for
  /// different cells may race; guard shared state. Failed cells are
  /// reported through it under isolate only (fail_fast is about to throw,
  /// and a journaled error row would wrongly survive a resume).
  using CellDone = std::function<void(std::size_t cell, const ScenarioResult&)>;
  using StreamCellDone = std::function<void(std::size_t cell, const StreamResult&)>;

  /// Runs every repetition of every queued cell on the pool and clears
  /// the queue. Results are in add() order.
  std::vector<ScenarioResult> run(const CellDone& on_cell_done = nullptr);

  // --- streamed cells ----------------------------------------------------

  /// Enqueues one streamed cell; returns its index into run_streams()'s
  /// result vector. Stream and scenario queues are independent.
  std::size_t add_stream(StreamSpec spec, PolicyFactory policy);

  /// Convenience: one stream against a whole policy grid.
  void add_stream_grid(const StreamSpec& spec, const std::vector<PolicyFactory>& policies);

  std::size_t stream_cells() const noexcept { return stream_cells_.size(); }

  /// Runs every repetition of every queued streamed cell on the pool and
  /// clears the stream queue. Results are in add_stream() order and are
  /// aggregated exactly like StreamRunner::run.
  std::vector<StreamResult> run_streams(const StreamCellDone& on_cell_done = nullptr);

 private:
  struct Cell {
    ScenarioRunner runner;
    PolicyFactory policy;
    RepMetric metric;
  };
  struct StreamCell {
    StreamRunner runner;
    PolicyFactory policy;
  };

  ThreadPool pool_;
  RunPolicy policy_;
  /// Lazily created on the first run with a deadline; shared across runs.
  std::unique_ptr<DeadlineWatchdog> watchdog_;
  std::vector<Cell> cells_;
  std::vector<StreamCell> stream_cells_;
};

}  // namespace rdcn
