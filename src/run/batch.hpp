#pragma once

// BatchRunner: fans a grid of (scenario x policy) cells out over the
// shared thread pool, one task per repetition. Results are deterministic
// and independent of worker scheduling: every repetition's outcome lands
// in its preassigned slot, and aggregates are folded in seed order.

#include <cstddef>
#include <vector>

#include "run/scenario.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {

class BatchRunner {
 public:
  /// threads = 0 uses hardware concurrency.
  explicit BatchRunner(std::size_t threads = 0) : pool_(threads) {}

  /// Enqueues one cell; returns its index into run()'s result vector.
  std::size_t add(ScenarioSpec spec, PolicyFactory policy, RepMetric metric = nullptr);

  /// Convenience: one scenario against a whole policy grid.
  void add_grid(const ScenarioSpec& spec, const std::vector<PolicyFactory>& policies);

  std::size_t cells() const noexcept { return cells_.size(); }

  /// Runs every repetition of every queued cell on the pool and clears
  /// the queue. Results are in add() order.
  std::vector<ScenarioResult> run();

 private:
  struct Cell {
    ScenarioRunner runner;
    PolicyFactory policy;
    RepMetric metric;
  };

  ThreadPool pool_;
  std::vector<Cell> cells_;
};

}  // namespace rdcn
