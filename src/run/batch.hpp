#pragma once

// BatchRunner: fans a grid of (scenario x policy) cells out over the
// shared thread pool, one task per repetition. Results are deterministic
// and independent of worker scheduling: every repetition's outcome lands
// in its preassigned slot, and aggregates are folded in seed order.
// Streamed (open-loop) cells ride the same pool via add_stream /
// run_streams, so latency-vs-load sweeps parallelize like batch grids.

#include <cstddef>
#include <vector>

#include "run/scenario.hpp"
#include "run/stream.hpp"
#include "util/thread_pool.hpp"

namespace rdcn {

class BatchRunner {
 public:
  /// threads = 0 uses hardware concurrency.
  explicit BatchRunner(std::size_t threads = 0) : pool_(threads) {}

  /// Enqueues one cell; returns its index into run()'s result vector.
  std::size_t add(ScenarioSpec spec, PolicyFactory policy, RepMetric metric = nullptr);

  /// Convenience: one scenario against a whole policy grid.
  void add_grid(const ScenarioSpec& spec, const std::vector<PolicyFactory>& policies);

  std::size_t cells() const noexcept { return cells_.size(); }

  /// Runs every repetition of every queued cell on the pool and clears
  /// the queue. Results are in add() order.
  std::vector<ScenarioResult> run();

  // --- streamed cells ----------------------------------------------------

  /// Enqueues one streamed cell; returns its index into run_streams()'s
  /// result vector. Stream and scenario queues are independent.
  std::size_t add_stream(StreamSpec spec, PolicyFactory policy);

  /// Convenience: one stream against a whole policy grid.
  void add_stream_grid(const StreamSpec& spec, const std::vector<PolicyFactory>& policies);

  std::size_t stream_cells() const noexcept { return stream_cells_.size(); }

  /// Runs every repetition of every queued streamed cell on the pool and
  /// clears the stream queue. Results are in add_stream() order and are
  /// aggregated exactly like StreamRunner::run.
  std::vector<StreamResult> run_streams();

 private:
  struct Cell {
    ScenarioRunner runner;
    PolicyFactory policy;
    RepMetric metric;
  };
  struct StreamCell {
    StreamRunner runner;
    PolicyFactory policy;
  };

  ThreadPool pool_;
  std::vector<Cell> cells_;
  std::vector<StreamCell> stream_cells_;
};

}  // namespace rdcn
