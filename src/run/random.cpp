#include "run/random.hpp"

#include "util/rng.hpp"

namespace rdcn {

namespace {

/// Shared draws: topology shape and workload knobs (the grids mirror
/// tests/helpers.hpp's varied families plus the full topology zoo --
/// hybrid/crossbar corners, oversubscribed pods, sparse expanders and
/// rotor fabrics all flow through the same differential checks).
void draw_topology(Rng& rng, TopologySpec& topology) {
  const std::int64_t family = rng.next_int(0, 9);
  if (family <= 0) {  // 10%: crossbar
    topology.kind = TopologySpec::Kind::Crossbar;
    topology.crossbar_ports = static_cast<NodeIndex>(rng.next_int(2, 6));
    return;
  }
  topology.seed_salt = rng.next_u64();
  if (family <= 2) {  // 20%: oversubscribed hybrid pod
    topology.kind = TopologySpec::Kind::Oversubscribed;
    auto& net = topology.oversubscribed;
    net.racks = static_cast<NodeIndex>(rng.next_int(3, 6));
    net.hot_racks = static_cast<NodeIndex>(rng.next_int(1, 2));
    net.hot_lasers = static_cast<NodeIndex>(rng.next_int(2, 3));
    net.hot_photodetectors = static_cast<NodeIndex>(rng.next_int(1, 2));
    net.cold_lasers = 1;
    net.cold_photodetectors = static_cast<NodeIndex>(rng.next_int(1, 2));
    net.density = rng.next_double(0.4, 1.0);
    net.fast_delay = 1;
    net.slow_delay = rng.next_int(2, 5);
    net.slow_fraction = rng.next_double(0.0, 0.5);
    net.attach_delay = rng.next_bool(0.25) ? 1 : 0;
    net.fixed_base_delay = rng.next_bool(0.5) ? rng.next_int(2, 5) : 0;
    net.oversubscription = rng.next_double(1.0, 6.0);
    return;
  }
  if (family <= 4) {  // 20%: expander (sparse and hybrid corners)
    topology.kind = TopologySpec::Kind::Expander;
    auto& net = topology.expander;
    net.racks = static_cast<NodeIndex>(rng.next_int(3, 7));
    net.degree = static_cast<NodeIndex>(
        rng.next_int(1, std::min<std::int64_t>(3, net.racks - 1)));
    net.lasers_per_rack = static_cast<NodeIndex>(rng.next_int(1, 2));
    net.photodetectors_per_rack = static_cast<NodeIndex>(rng.next_int(1, 2));
    net.min_edge_delay = 1;
    net.max_edge_delay = rng.next_int(1, 3);
    net.attach_delay = rng.next_bool(0.25) ? 1 : 0;
    net.fixed_link_delay = rng.next_bool(0.35) ? rng.next_int(4, 12) : 0;
    return;
  }
  if (family <= 6) {  // 20%: rotor (full and sparse matching sets)
    topology.kind = TopologySpec::Kind::Rotor;
    auto& net = topology.rotor;
    net.racks = static_cast<NodeIndex>(rng.next_int(3, 8));
    net.ports_per_rack = static_cast<NodeIndex>(rng.next_int(1, 2));
    net.num_matchings = rng.next_bool(0.5)
                            ? 0  // all offsets wired
                            : static_cast<NodeIndex>(rng.next_int(1, net.racks - 1));
    net.edge_delay = rng.next_int(1, 3);
    net.attach_delay = rng.next_bool(0.25) ? 1 : 0;
    net.fixed_link_delay = rng.next_bool(0.3) ? rng.next_int(4, 10) : 0;
    return;
  }
  topology.kind = TopologySpec::Kind::TwoTier;  // 30%: the original family
  auto& net = topology.two_tier;
  net.racks = static_cast<NodeIndex>(rng.next_int(3, 7));
  net.lasers_per_rack = static_cast<NodeIndex>(rng.next_int(1, 3));
  net.photodetectors_per_rack = static_cast<NodeIndex>(rng.next_int(1, 3));
  net.density = rng.next_double(0.4, 1.0);
  net.max_edge_delay = rng.next_int(1, 4);
  net.attach_delay = rng.next_bool(0.25) ? rng.next_int(1, 2) : 0;
  net.fixed_link_delay = rng.next_bool(0.4) ? rng.next_int(4, 12) : 0;
}

void draw_workload_shape(Rng& rng, WorkloadConfig& shape) {
  shape.skew = static_cast<PairSkew>(rng.next_int(0, 4));
  shape.zipf_exponent = rng.next_double(0.8, 1.6);
  shape.hotspot_fraction = rng.next_double(0.2, 0.7);
  shape.weights = static_cast<WeightDist>(rng.next_int(0, 3));
  shape.weight_max = rng.next_int(2, 16);
  shape.pareto_shape = rng.next_double(1.1, 2.0);
  shape.elephant_fraction = rng.next_double(0.05, 0.3);
}

void draw_engine(Rng& rng, EngineOptions& engine) {
  engine.speedup_rounds = rng.next_bool(0.25) ? 2 : 1;
  engine.endpoint_capacity = rng.next_bool(0.25) ? 2 : 1;
  if (engine.endpoint_capacity == 1 && rng.next_bool(0.2)) {
    engine.reconfig_delay = rng.next_int(1, 2);
  }
}

}  // namespace

ScenarioSpec random_scenario_spec(std::uint64_t seed) {
  Rng rng(Rng(seed).fork(0xfc2dULL).next_u64());
  ScenarioSpec spec;
  spec.name = "fuzz-batch-" + std::to_string(seed);
  spec.base_seed = seed;
  spec.repetitions = 1;
  draw_topology(rng, spec.topology);
  draw_workload_shape(rng, spec.workload);
  spec.workload.num_packets = static_cast<std::size_t>(rng.next_int(6, 48));
  spec.workload.arrival_rate = rng.next_double(1.0, 6.0);
  spec.workload.bursty = rng.next_bool(0.3);
  draw_engine(rng, spec.engine);
  return spec;
}

StreamSpec random_stream_spec(std::uint64_t seed) {
  Rng rng(Rng(seed).fork(0x57e4ULL).next_u64());
  StreamSpec spec;
  spec.name = "fuzz-stream-" + std::to_string(seed);
  spec.base_seed = seed;
  spec.repetitions = 1;
  draw_topology(rng, spec.topology);
  draw_workload_shape(rng, spec.traffic.shape);
  spec.traffic.process = rng.next_bool(0.3) ? ArrivalProcess::OnOff : ArrivalProcess::Poisson;
  spec.traffic.on_stay = rng.next_double(0.5, 0.95);
  spec.traffic.off_stay = rng.next_double(0.3, 0.9);
  // Light load through overload; overloaded points exercise the truncation
  // path, bounded by a tight step cap.
  spec.traffic.rho = rng.next_double(0.3, 1.2);
  // The zoo's sparse shapes (expander/rotor with a hybrid layer) route many
  // pairs fixed-only; loosen the zero-demand guard so those streams are
  // checked instead of skipped (the default 0.5 is about reported-rho
  // hygiene, which the differential checks do not rely on).
  spec.traffic.max_zero_demand_fraction = 0.9;
  spec.warmup_packets = static_cast<std::size_t>(rng.next_int(0, 150));
  spec.measure_packets = static_cast<std::size_t>(rng.next_int(150, 1200));
  spec.telemetry_window = rng.next_int(16, 128);
  spec.step_cap_factor = 3.0;
  draw_engine(rng, spec.engine);
  spec.traffic.speedup_rounds = spec.engine.speedup_rounds;

  // ~1 in 3 stream specs carries a time-staged schedule (failure injection
  // and mid-run rewiring). Drawn after everything else so unstaged specs
  // keep their historical derivation. Rack indices stay in {0, 1} -- every
  // zoo family has at least two racks/ports -- and edge kills use low
  // indices (a draw exceeding a sparse topology's edge count is rejected
  // by Engine::apply_mutation and surfaces as a spec skip, not a failure).
  if (rng.next_bool(0.35)) {
    const std::int64_t num_stages = rng.next_int(2, 3);
    NodeIndex killed_rack = -1;
    EdgeIndex killed_edge = -1;
    for (std::int64_t k = 0; k < num_stages; ++k) {
      StageSpec stage;
      const bool last = k + 1 == num_stages;
      stage.duration = last && rng.next_bool(0.5) ? 0 : rng.next_int(20, 120);
      if (rng.next_bool(0.3)) stage.rho = rng.next_double(0.3, 1.0);
      if (spec.traffic.process == ArrivalProcess::OnOff && rng.next_bool(0.25)) {
        stage.on_stay = rng.next_double(0.5, 0.95);
        stage.off_stay = rng.next_double(0.3, 0.9);
      }
      stage.mutation.dead_policy =
          rng.next_bool(0.5) ? DeadPolicy::Requeue : DeadPolicy::Drop;
      // Heal earlier damage before (possibly) inflicting new damage, so
      // schedules exercise the restore path and rarely strangle the run.
      if (killed_rack >= 0 && rng.next_bool(0.8)) {
        stage.mutation.restore_racks.push_back(killed_rack);
        killed_rack = -1;
      }
      if (killed_edge >= 0 && rng.next_bool(0.8)) {
        stage.mutation.restore_edges.push_back(killed_edge);
        killed_edge = -1;
      }
      if (k > 0 && killed_rack < 0 && rng.next_bool(0.4)) {
        killed_rack = static_cast<NodeIndex>(rng.next_int(0, 1));
        stage.mutation.kill_racks.push_back(killed_rack);
      }
      if (k > 0 && killed_edge < 0 && rng.next_bool(0.4)) {
        killed_edge = static_cast<EdgeIndex>(rng.next_int(0, 3));
        stage.mutation.kill_edges.push_back(killed_edge);
      }
      if (rng.next_bool(0.15)) stage.mutation.speedup_rounds = rng.next_bool(0.5) ? 2 : 1;
      if (spec.engine.reconfig_delay == 0 && rng.next_bool(0.15)) {
        stage.mutation.endpoint_capacity = rng.next_bool(0.5) ? 2 : 1;
      }
      spec.stages.push_back(std::move(stage));
    }
  }
  return spec;
}

}  // namespace rdcn
