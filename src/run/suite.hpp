#pragma once

// Declarative scenario suites: a JSON file describes a full experiment
// grid -- topologies x workloads (or open-loop traffic) x engine variants
// x policies -- and a SuiteRunner fans the expanded grid through the
// existing BatchRunner, emitting one BenchReport-style JSON line per
// (cell, policy). Every future experiment becomes a config file instead
// of a recompile; the gallery under examples/suites/ holds the paper
// baselines and the topology-zoo shootouts.
//
// The parser is strict: unknown keys are rejected (with the list of keys
// the object accepts), type mismatches and out-of-range values name the
// exact JSON path ("topologies[2].density"), and policies are validated
// against the run/ registry at parse time. suite_to_json re-emits the
// normalized form (every default materialized), so spec -> JSON -> spec
// round-trips bit-for-bit -- the golden test in tests/test_suite.cpp.
//
// Schema (see README.md "Declarative suite files" for the annotated
// version):
//
//   {
//     "suite": "paper-baseline",          // required
//     "mode": "batch",                    // batch (default) | stream
//     "seeds": {"base": 1, "repetitions": 5},
//     "policies": ["alg", "maxweight"],   // required, registry names
//     "engines": [{"name": "unit"}],      // optional engine variants
//     "topologies": [{"kind": "two_tier", ...}, ...],   // required
//     "workloads": [{...}, ...],          // batch mode: required
//     "traffic": [{...}, ...],            // stream mode: required
//     "stream": {"warmup": 1000, ...},    // stream mode run knobs
//     "stages": [{"duration": 500, "kill_racks": [0], ...}, ...]
//   }                                     // stream mode: optional schedule
//
// "stages" declares a time-staged dynamic scenario (run/stream.hpp
// StageSpec): each entry holds traffic overrides (rho / on_stay /
// off_stay, -1 inherits the traffic axis) plus an engine mutation
// (kill_edges / restore_edges / kill_racks / restore_racks / speedup /
// capacity / dead: drop|requeue) applied atomically at the stage edge.
// The same schedule is copied into every grid cell, so edge indices must
// be valid for every topology axis entry (rack indices are the portable
// choice). A standalone schedule file (a bare JSON array of the same
// stage objects) is the `rdcn_cli stream --stages` input.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "run/failure.hpp"
#include "run/scenario.hpp"
#include "run/stream.hpp"

namespace rdcn {

/// Suite parse/validation failure. `path()` is the JSON path of the
/// offending value ("topologies[2].density"; empty for document-level
/// errors); what() always embeds it.
class SuiteError : public std::runtime_error {
 public:
  SuiteError(std::string path, const std::string& what)
      : std::runtime_error(path.empty() ? what : path + ": " + what),
        path_(std::move(path)) {}

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// One labelled axis entry of the grid. Labels default to
/// "<kind-or-index>" and must be unique per axis (they name result cells).
struct SuiteTopology {
  std::string label;
  TopologySpec spec;
};

struct SuiteWorkload {
  std::string label;
  WorkloadConfig config;
};

struct SuiteTraffic {
  std::string label;
  TrafficConfig config;
};

struct SuiteEngine {
  std::string label;
  EngineOptions options;
};

struct SuiteSpec {
  enum class Mode { Batch, Stream };

  std::string name;
  Mode mode = Mode::Batch;
  std::uint64_t base_seed = 1;
  std::size_t repetitions = 3;

  std::vector<SuiteTopology> topologies;
  std::vector<SuiteWorkload> workloads;  ///< batch mode axis
  std::vector<SuiteTraffic> traffic;     ///< stream mode axis
  std::vector<SuiteEngine> engines;      ///< always >= 1 (default "unit")
  std::vector<std::string> policies;     ///< registry names, validated

  /// Stream-mode run knobs (ignored in batch mode).
  std::size_t warmup_packets = 1000;
  std::size_t measure_packets = 10000;
  Time telemetry_window = 256;
  Time max_steps = 0;
  double step_cap_factor = 8.0;

  /// Stream-mode stage schedule, copied into every grid cell (empty =
  /// classic single-regime runs). See the "stages" schema note above.
  std::vector<StageSpec> stages;
};

/// Parses and validates a suite document. Throws SuiteError (and never
/// json::ParseError: malformed JSON is wrapped with its position).
SuiteSpec parse_suite(const std::string& json_text);

/// Reads the file and parses it; file-system errors also throw SuiteError.
SuiteSpec load_suite_file(const std::string& path);

/// Parses a standalone stage schedule: a JSON array of stage objects, the
/// exact schema of a suite's "stages" key (errors name "stages[i].key").
/// This is the `rdcn_cli stream --stages` document.
std::vector<StageSpec> parse_stages_json(const std::string& json_text);

/// Reads and parses a stage-schedule file; also throws SuiteError.
std::vector<StageSpec> load_stages_file(const std::string& path);

/// The normalized document: every default materialized, keys in schema
/// order. parse_suite(suite_to_json(s)) reproduces s exactly, and
/// suite_to_json is a fixpoint over that round-trip.
std::string suite_to_json(const SuiteSpec& spec);

/// The expanded batch grid (topologies x workloads x engines), one
/// ScenarioSpec per cell, named "<suite>/<topology>/<workload>/<engine>".
/// Throws SuiteError when spec.mode != Batch.
std::vector<ScenarioSpec> suite_batch_grid(const SuiteSpec& spec);

/// The expanded stream grid (topologies x traffic x engines), mirrored
/// naming. Throws SuiteError when spec.mode != Stream.
std::vector<StreamSpec> suite_stream_grid(const SuiteSpec& spec);

/// Fault-tolerance and journaling knobs of a suite run.
struct SuiteRunOptions {
  std::size_t threads = 0;  ///< BatchRunner pool width (0 = hardware)
  /// Failure policy, per-repetition deadline, retry budget, fault hook.
  RunPolicy policy;
  /// Crash-safe journal path (empty = none): after every completed cell
  /// the whole manifest is rewritten via atomic write-temp-fsync-rename,
  /// so the file is a complete valid journal at every instant -- SIGKILL
  /// at any byte loses at most the in-flight cells.
  std::string journal;
};

/// A loaded suite journal: the embedded normalized spec plus the rows
/// recorded so far (indexed by cell; empty string = not yet recorded).
///
/// On-disk format (JSON lines, every line strict JSON):
///   {"rdcn_suite_journal":1,"suite":<name>,"cells":N,"spec":<normalized>}
///   {"cell":i,"name":<cell name>,"row":<the emitted JSON row, verbatim>}
/// The spec is embedded as suite_to_json text, so a journal alone can
/// resume its suite; rows are stored verbatim, which is what makes the
/// resumed output bit-identical to an uninterrupted run.
struct SuiteJournal {
  SuiteSpec spec;
  std::string spec_json;           ///< normalized text, the resume digest
  std::vector<std::string> rows;   ///< size = cells(); "" = missing
};

/// Reads and strictly validates a journal file (header tag, spec
/// round-trip, cell indices/names, row JSON). Throws SuiteError.
SuiteJournal load_suite_journal(const std::string& path);

/// Executes a suite: expands the grid, fans every (cell, policy) through
/// a BatchRunner, and renders one BenchReport-schema JSON line per cell
/// ({"bench": <suite>, "name": <policy>, "params": {...}, "total_cost":
/// ..., "wall_ms": ..., ...}).
class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteSpec spec);

  const SuiteSpec& spec() const noexcept { return spec_; }

  /// Cells in the expanded grid (before the policy fan-out).
  std::size_t grid_cells() const noexcept;

  /// Total (cell, policy) result lines run() will emit.
  std::size_t cells() const noexcept { return grid_cells() * spec_.policies.size(); }

  /// "<scenario-name> x <policy>" for every cell, in run() order (the
  /// CLI's --list / dry-run view).
  std::vector<std::string> cell_names() const;

  /// Runs the whole grid on a BatchRunner (threads = 0: hardware
  /// concurrency) and returns the JSON lines in cell_names() order.
  std::vector<std::string> run(std::size_t threads = 0) const {
    return run(SuiteRunOptions{threads, RunPolicy{}, std::string()}, nullptr);
  }

  /// Same with fault tolerance and journaling. With `resume`, cells the
  /// journal already records are skipped and their rows merged back
  /// verbatim, so the returned lines are bit-identical to an
  /// uninterrupted run; the journal's normalized spec must match this
  /// suite's exactly (SuiteError otherwise). Under isolate, failed cells
  /// render a structured error row ("status": "failed", exception type +
  /// message, attempt count) instead of poisoning their siblings.
  std::vector<std::string> run(const SuiteRunOptions& options,
                               const SuiteJournal* resume = nullptr) const;

 private:
  SuiteSpec spec_;
};

}  // namespace rdcn
