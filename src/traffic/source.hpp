#pragma once

// Open-loop arrival processes for streaming (steady-state) evaluation.
//
// The batch workload generator (workload/) materializes a finite packet
// set; a TrafficSource instead produces packets online, one at a time,
// with arrivals driven by a target utilization rho of the reconfigurable
// layer. Endpoint pairs and weights reuse workload/'s PairSampler /
// sample_weight, so open-loop traffic has the identical skew and weight
// distributions as the batch experiments.
//
// The rho convention: a packet for pair (s, d) demands min_{e in E_p} d(e)
// chunks -- its cheapest reconfigurable route; pairs served only by the
// fixed layer demand 0. The layer moves at most capacity = min(|T|, |R|)
// chunks per step (a perfect matching) at unit speed. The arrival rate is
// calibrated as
//
//   lambda = rho * capacity * speedup / E[demand],
//
// with E[demand] estimated by a deterministic Monte-Carlo over the
// configured pair distribution. rho is therefore offered chunk load
// relative to aggregate port capacity; skewed traffic saturates the hot
// ports well below rho = 1, which is exactly what the latency-vs-load
// curves probe.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/topology.hpp"
#include "workload/generator.hpp"

namespace rdcn {

enum class ArrivalProcess {
  Poisson,  ///< per-step arrival counts ~ Poisson(lambda)
  OnOff,    ///< MMPP-style 2-state Markov modulation of the Poisson rate
  Trace,    ///< replay of a recorded packet sequence
};

/// Which notion of "chunks per step the layer can move" calibration uses.
enum class CapacityModel {
  /// min(|T|, |R|): exact for dense fabrics (crossbars, full two-tier)
  /// where every port can be matched simultaneously.
  Ports,
  /// Size of a maximum matching of the reconfigurable layer: the true
  /// ceiling for sparse wirings (rotor matching subsets, low-degree
  /// expanders) that leave some ports dark -- Ports overcounts there and
  /// a nominal rho of 1.0 would under-drive the fabric.
  MaxMatching,
};

struct TrafficConfig {
  ArrivalProcess process = ArrivalProcess::Poisson;
  /// Target utilization of the reconfigurable layer (see header comment).
  double rho = 0.8;
  CapacityModel capacity_model = CapacityModel::Ports;
  /// Endpoint-pair skew and weight distribution knobs; num_packets,
  /// arrival_rate and the bursty fields are ignored (arrivals come from
  /// `process` and `rho`), the seed is shared with the arrival draws.
  WorkloadConfig shape{};
  /// OnOff: per-step probabilities of staying in the ON / OFF state. The
  /// ON-state rate is lambda / pi_on (pi_on = stationary ON share), so the
  /// long-run offered load still meets rho.
  double on_stay = 0.9;
  double off_stay = 0.7;
  /// Engine speedup the run will use (scales the calibrated rate).
  int speedup_rounds = 1;
  /// Calibration guard: reject (throw) when more than this fraction of
  /// sampled pairs has no reconfigurable route (demand 0, fixed-layer
  /// only). Beyond it, rho silently describes a shrinking minority of the
  /// offered traffic; runs that want such shapes must opt in explicitly.
  double max_zero_demand_fraction = 0.5;
};

/// An online packet source: ids sequential from 0, arrivals nondecreasing
/// integers >= 1. Generative sources (Poisson, OnOff) never exhaust;
/// trace sources return nullopt at end of trace. Deterministic: the same
/// construction parameters yield the identical sequence.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  virtual std::optional<Packet> next() = 0;
};

/// Chunks per step the reconfigurable layer can move at most:
/// min(|T|, |R|) * speedup_rounds (the CapacityModel::Ports bound).
double service_capacity(const Topology& topology, int speedup_rounds = 1);

/// The CapacityModel::MaxMatching bound: maximum-matching size of the
/// reconfigurable layer (Hopcroft-Karp) times speedup_rounds. Equals
/// service_capacity on dense fabrics; strictly smaller when the wiring
/// leaves ports dark.
double matching_capacity(const Topology& topology, int speedup_rounds = 1);

/// Cheapest-route demand of a (source, destination) pair in chunks:
/// min_{e in E_p} d(e); 0 when the pair has no reconfigurable route.
std::int64_t cheapest_demand(const Topology& topology, NodeIndex source,
                             NodeIndex destination);

/// E[demand] of the configured pair distribution, estimated by a
/// deterministic Monte-Carlo (seeded from shape.seed) of `draws` pairs.
double mean_service_demand(const Topology& topology, const WorkloadConfig& shape,
                           std::size_t draws = 4096);

/// Demand profile of the pair distribution: the mean over all draws plus
/// the fraction of draws with no reconfigurable route at all (demand 0);
/// the latter is invisible in the mean alone -- cheapest_demand cannot
/// distinguish "cheap route" from "no route" -- and silently dilutes any
/// rho computed from it.
struct DemandEstimate {
  double mean_demand = 0.0;    ///< over all draws (zero-demand included)
  double zero_fraction = 0.0;  ///< share of draws with demand == 0
};
DemandEstimate estimate_service_demand(const Topology& topology,
                                       const WorkloadConfig& shape,
                                       std::size_t draws = 4096);

/// Packets per step targeting utilization config.rho (see header comment).
/// Throws when the pair distribution never touches the reconfigurable
/// layer (E[demand] == 0) or when more than
/// config.max_zero_demand_fraction of the sampled pairs has no
/// reconfigurable route.
double calibrate_rate(const Topology& topology, const TrafficConfig& config);

/// Builds a generative source (Poisson or OnOff) over the topology.
/// config.process == Trace is invalid here; use make_trace_source.
std::unique_ptr<TrafficSource> make_source(const Topology& topology,
                                           const TrafficConfig& config);

/// Replay of a recorded packet sequence (for example Instance::packets()):
/// packets are re-issued verbatim with their recorded ids and arrivals.
std::unique_ptr<TrafficSource> make_trace_source(std::vector<Packet> packets);

/// Pulls the first `count` packets off a source (trace capture; pairs with
/// make_trace_source / Instance{topology, packets} for bit-exact replay).
std::vector<Packet> record_arrivals(TrafficSource& source, std::size_t count);

}  // namespace rdcn
