#include "traffic/source.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "match/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace rdcn {

namespace {

/// Shared core of the generative sources: a per-step arrival count (drawn
/// by the subclass) fans out into packets whose endpoints and weights come
/// from the workload samplers. The rng call order per packet (pair draw,
/// then weight draw) matches generate_workload, so a Poisson source with
/// the same rate reproduces the batch generator's sequence.
class GenerativeSource : public TrafficSource {
 public:
  GenerativeSource(const Topology& topology, const TrafficConfig& config)
      : rng_(config.shape.seed),
        sampler_(topology, config.shape, rng_),
        shape_(config.shape),
        rate_(calibrate_rate(topology, config)) {}

  std::optional<Packet> next() final {
    while (left_in_step_ == 0) {
      ++step_;
      left_in_step_ = draw_count(rng_);
    }
    --left_in_step_;
    const auto [source, destination] = sampler_.sample(rng_);
    Packet packet;
    packet.id = next_id_++;
    packet.arrival = step_;
    packet.weight = sample_weight(shape_, rng_);
    packet.source = source;
    packet.destination = destination;
    return packet;
  }

 protected:
  virtual std::uint64_t draw_count(Rng& rng) = 0;

  double rate() const noexcept { return rate_; }

 private:
  Rng rng_;
  PairSampler sampler_;
  WorkloadConfig shape_;
  double rate_;
  Time step_ = 0;  ///< arrivals start at step 1
  std::uint64_t left_in_step_ = 0;
  PacketIndex next_id_ = 0;
};

class PoissonSource final : public GenerativeSource {
 public:
  using GenerativeSource::GenerativeSource;

 private:
  std::uint64_t draw_count(Rng& rng) override { return rng.next_poisson(rate()); }
};

/// MMPP-style ON/OFF source: a 2-state Markov chain modulates the Poisson
/// rate between lambda / pi_on (ON) and 0 (OFF); the stationary mix keeps
/// the long-run offered load at the calibrated rate.
class OnOffSource final : public GenerativeSource {
 public:
  OnOffSource(const Topology& topology, const TrafficConfig& config)
      : GenerativeSource(topology, config),
        on_stay_(config.on_stay),
        off_stay_(config.off_stay) {
    if (on_stay_ < 0.0 || on_stay_ >= 1.0 || off_stay_ < 0.0 || off_stay_ >= 1.0) {
      throw std::invalid_argument("on_stay / off_stay must be in [0, 1)");
    }
    pi_on_ = (1.0 - off_stay_) / ((1.0 - on_stay_) + (1.0 - off_stay_));
  }

 private:
  std::uint64_t draw_count(Rng& rng) override {
    if (!state_drawn_) {
      // Start the chain in its stationary distribution.
      on_ = rng.next_bool(pi_on_);
      state_drawn_ = true;
    } else {
      on_ = rng.next_bool(on_ ? on_stay_ : 1.0 - off_stay_);
    }
    return on_ ? rng.next_poisson(rate() / pi_on_) : 0;
  }

  double on_stay_;
  double off_stay_;
  double pi_on_ = 1.0;
  bool on_ = true;
  bool state_drawn_ = false;
};

class TraceSource final : public TrafficSource {
 public:
  explicit TraceSource(std::vector<Packet> packets) : packets_(std::move(packets)) {}

  std::optional<Packet> next() override {
    if (index_ >= packets_.size()) return std::nullopt;
    return packets_[index_++];
  }

 private:
  std::vector<Packet> packets_;
  std::size_t index_ = 0;
};

}  // namespace

double service_capacity(const Topology& topology, int speedup_rounds) {
  if (speedup_rounds < 1) throw std::invalid_argument("speedup_rounds must be >= 1");
  const auto ports = std::min(topology.num_transmitters(), topology.num_receivers());
  return static_cast<double>(ports) * static_cast<double>(speedup_rounds);
}

double matching_capacity(const Topology& topology, int speedup_rounds) {
  if (speedup_rounds < 1) throw std::invalid_argument("speedup_rounds must be >= 1");
  std::vector<std::vector<std::int32_t>> adjacency(
      static_cast<std::size_t>(topology.num_transmitters()));
  for (const ReconfigEdge& edge : topology.edges()) {
    adjacency[static_cast<std::size_t>(edge.transmitter)].push_back(edge.receiver);
  }
  const std::size_t matched = matching_size(
      hopcroft_karp(adjacency, static_cast<std::size_t>(topology.num_receivers())));
  return static_cast<double>(matched) * static_cast<double>(speedup_rounds);
}

std::int64_t cheapest_demand(const Topology& topology, NodeIndex source,
                             NodeIndex destination) {
  std::int64_t best = 0;
  for (EdgeIndex e : topology.candidate_edges(source, destination)) {
    const Delay delay = topology.edge(e).delay;
    if (best == 0 || delay < best) best = delay;
  }
  return best;
}

double mean_service_demand(const Topology& topology, const WorkloadConfig& shape,
                           std::size_t draws) {
  return estimate_service_demand(topology, shape, draws).mean_demand;
}

DemandEstimate estimate_service_demand(const Topology& topology,
                                       const WorkloadConfig& shape, std::size_t draws) {
  if (draws == 0) throw std::invalid_argument("estimate_service_demand needs draws >= 1");
  // Fork the seed so the estimate never perturbs the arrival stream drawn
  // from the same WorkloadConfig.
  Rng rng(Rng(shape.seed).fork(0x9a1fULL).next_u64());
  const PairSampler sampler(topology, shape, rng);
  double total = 0.0;
  std::size_t zero = 0;
  for (std::size_t i = 0; i < draws; ++i) {
    const auto [source, destination] = sampler.sample(rng);
    const std::int64_t demand = cheapest_demand(topology, source, destination);
    if (demand == 0) ++zero;
    total += static_cast<double>(demand);
  }
  DemandEstimate estimate;
  estimate.mean_demand = total / static_cast<double>(draws);
  estimate.zero_fraction = static_cast<double>(zero) / static_cast<double>(draws);
  return estimate;
}

double calibrate_rate(const Topology& topology, const TrafficConfig& config) {
  if (config.rho <= 0.0) throw std::invalid_argument("rho must be > 0");
  if (config.max_zero_demand_fraction < 0.0 || config.max_zero_demand_fraction > 1.0) {
    throw std::invalid_argument("max_zero_demand_fraction must be in [0, 1]");
  }
  const DemandEstimate demand = estimate_service_demand(topology, config.shape);
  if (demand.mean_demand <= 0.0) {
    throw std::invalid_argument(
        "pair distribution never touches the reconfigurable layer; rho is undefined");
  }
  if (demand.zero_fraction > config.max_zero_demand_fraction) {
    throw std::invalid_argument(
        "rho calibration rejected: " + std::to_string(demand.zero_fraction * 100.0) +
        "% of sampled pairs has no reconfigurable route (limit " +
        std::to_string(config.max_zero_demand_fraction * 100.0) +
        "%); rho would describe a minority of the offered traffic -- raise "
        "TrafficConfig::max_zero_demand_fraction to opt in");
  }
  const double capacity = config.capacity_model == CapacityModel::MaxMatching
                              ? matching_capacity(topology, config.speedup_rounds)
                              : service_capacity(topology, config.speedup_rounds);
  if (capacity <= 0.0) {
    throw std::invalid_argument(
        "reconfigurable layer has zero service capacity; rho is undefined");
  }
  return config.rho * capacity / demand.mean_demand;
}

std::unique_ptr<TrafficSource> make_source(const Topology& topology,
                                           const TrafficConfig& config) {
  switch (config.process) {
    case ArrivalProcess::Poisson:
      return std::make_unique<PoissonSource>(topology, config);
    case ArrivalProcess::OnOff:
      return std::make_unique<OnOffSource>(topology, config);
    case ArrivalProcess::Trace:
      throw std::invalid_argument("trace replay needs make_trace_source");
  }
  throw std::logic_error("unknown ArrivalProcess");
}

std::unique_ptr<TrafficSource> make_trace_source(std::vector<Packet> packets) {
  return std::make_unique<TraceSource>(std::move(packets));
}

std::vector<Packet> record_arrivals(TrafficSource& source, std::size_t count) {
  std::vector<Packet> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::optional<Packet> packet = source.next();
    if (!packet) break;
    packets.push_back(*packet);
  }
  return packets;
}

}  // namespace rdcn
