// Walk through the paper's own figures interactively: builds the Figure-1
// and Figure-2 instances, runs ALG, renders the schedules as Gantt charts,
// and prints the quantities the paper's captions cite. A guided tour of
// the reproduction.
//
//   $ ./examples/paper_figures

#include <cstdio>

#include "core/charging.hpp"
#include "net/builders.hpp"
#include "opt/brute_force.hpp"
#include "run/scenario.hpp"
#include "sim/gantt.hpp"

namespace {

using namespace rdcn;

/// One runner per fixed figure instance (the bespoke-instance hook).
ScenarioRunner figure_runner(Instance (*make)()) {
  ScenarioSpec spec;
  spec.name = "paper-figure";
  spec.make_instance = [make](std::uint64_t) { return make(); };
  spec.engine.record_trace = true;
  return ScenarioRunner(std::move(spec));
}

}  // namespace

int main() {
  using namespace rdcn;

  std::printf("================ Figure 1 ================\n");
  std::printf("Two sources, three transmitters, four receivers, three destinations;\n");
  std::printf("reconfigurable delays 1, fixed link (s2,d3) of delay 4; five unit packets.\n\n");
  {
    const ScenarioRunner runner = figure_runner(&figure1_instance);
    const Instance instance = runner.instance(1);
    const RunResult run = runner.run_once(alg_policy(), instance);
    std::printf("ALG's schedule (t0=t1, t1=t2, t2=t3 of the paper):\n%s\n",
                render_gantt(instance, run, {.show_receivers = true}).c_str());
    const auto opt = brute_force_opt(instance);
    std::printf("paper's example schedule cost : 9\n");
    std::printf("exact optimum (paper: 7)      : %.0f\n", opt ? opt->cost : -1.0);
    std::printf("ALG's online cost             : %.0f", run.total_cost);
    std::printf("  <- recovers the optimum: p5 waits one step for (t3,r4)\n");
    std::printf("                                 instead of the delay-4 fixed link\n");
  }

  std::printf("\n================ Figure 2 ================\n");
  std::printf("Each source one transmitter, each destination one receiver; weights 1..4.\n");
  std::printf("The dispatch-time impact is an estimate; realized impacts shift when the\n");
  std::printf("stable matching changes on p4's arrival:\n\n");
  for (const bool with_p4 : {false, true}) {
    const ScenarioRunner runner =
        figure_runner(with_p4 ? &figure2_instance_pi_prime : &figure2_instance_pi);
    const Instance instance = runner.instance(1);
    const RunResult run = runner.run_once(alg_policy(), instance);
    const ChargingAudit audit = audit_charging(instance, run);
    std::printf("input %s:\n%s", with_p4 ? "Pi' = Pi + p4" : "Pi",
                render_gantt(instance, run).c_str());
    std::printf("realized impacts (paper: %s): ", with_p4 ? "1, 3, 3, 7" : "1, 2, 5");
    for (std::size_t i = 0; i < audit.charge.size(); ++i) {
      std::printf("%s%.0f", i ? ", " : "", audit.charge[i]);
    }
    std::printf("\n  alphas frozen at dispatch:  ");
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
      std::printf("%s%.0f", i ? ", " : "", run.outcomes[i].route.alpha);
    }
    std::printf("   (Lemma 2: impact <= alpha)\n\n");
  }

  std::printf("On Pi, p2 is blocked by the later p3 (charged to p3, impact 5 = 3 + 2);\n");
  std::printf("on Pi', p4's arrival flips the matching so p2 transmits first and now\n");
  std::printf("blocks p1 -- exactly the caption's point about online impact estimation.\n");
  return 0;
}
