// Quickstart: build a tiny two-tiered reconfigurable datacenter, submit a
// handful of packets online, run the paper's algorithm (impact dispatcher
// + stable-matching scheduler) through the ScenarioRunner, and inspect the
// resulting schedule and its dual-fitting certificate.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/dual_witness.hpp"
#include "run/scenario.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace rdcn;

// --- 1. Describe the network and the online packet sequence --------------
// Two racks, each with a laser (transmitter) and a photodetector
// (receiver); cross-rack reconfigurable links of delay 1 and 2, and a
// slow fixed link from rack 0 to rack 1 (delay 5).
Instance make_quickstart_instance() {
  Topology topology;
  topology.add_sources(2);
  topology.add_destinations(2);
  const NodeIndex laser0 = topology.add_transmitter(/*source=*/0);
  const NodeIndex laser1 = topology.add_transmitter(/*source=*/1);
  const NodeIndex pd0 = topology.add_receiver(/*destination=*/0);
  const NodeIndex pd1 = topology.add_receiver(/*destination=*/1);
  topology.add_edge(laser0, pd1, /*delay=*/1);
  topology.add_edge(laser1, pd0, /*delay=*/2);
  topology.add_fixed_link(/*source=*/0, /*destination=*/1, /*delay=*/5);

  Instance instance(std::move(topology), {});
  instance.add_packet(/*arrival=*/1, /*weight=*/4.0, /*src=*/0, /*dst=*/1);
  instance.add_packet(/*arrival=*/1, /*weight=*/1.0, /*src=*/0, /*dst=*/1);
  instance.add_packet(/*arrival=*/2, /*weight=*/2.0, /*src=*/1, /*dst=*/0);
  instance.add_packet(/*arrival=*/3, /*weight=*/1.0, /*src=*/0, /*dst=*/1);
  return instance;
}

}  // namespace

int main() {
  using namespace rdcn;

  // --- 2. Wrap it in a scenario and run ALG -------------------------------
  // Bespoke instances plug into the same runner the benches use; the
  // trace enables the dual-fitting certificate below.
  ScenarioSpec spec;
  spec.name = "quickstart";
  spec.make_instance = [](std::uint64_t) { return make_quickstart_instance(); };
  spec.engine.record_trace = true;
  const ScenarioRunner runner(spec);

  const Instance instance = runner.instance(1);
  const RunResult run = runner.run_once(alg_policy(), instance);

  Table table({"packet", "route", "alpha", "transmit steps", "completion", "latency"});
  for (std::size_t i = 0; i < instance.num_packets(); ++i) {
    const PacketOutcome& outcome = run.outcomes[i];
    std::string route = outcome.route.use_fixed
                            ? "fixed link"
                            : "edge #" + std::to_string(outcome.route.edge);
    std::string steps;
    for (Time t : outcome.chunk_transmit_steps) {
      if (!steps.empty()) steps += ',';
      steps += std::to_string(t);
    }
    if (steps.empty()) steps = "-";
    table.add_row({"p" + std::to_string(i), route, Table::fmt(outcome.route.alpha, 2), steps,
                   Table::fmt(static_cast<std::int64_t>(outcome.completion)),
                   Table::fmt(outcome.weighted_latency, 2)});
  }
  table.print("quickstart: ALG schedule");

  const ScheduleSummary summary = summarize(instance, run);
  std::printf("\ntotal weighted latency : %.2f\n", summary.total_cost);
  std::printf("makespan               : %lld\n", static_cast<long long>(summary.makespan));
  std::printf("reconfigurable share   : %.0f%%\n", 100.0 * summary.reconfig_fraction);

  // --- 3. Certify with the paper's dual-fitting witness -------------------
  const DualWitness witness = build_dual_witness(instance, run);
  const double eps = 1.0;  // compare against an OPT at 1/(2+eps) speed
  std::printf("\ndual certificate (eps=%.1f):\n", eps);
  std::printf("  sum alpha            : %.2f  (>= ALG cost: %s)\n", witness.sum_alpha,
              witness.sum_alpha + 1e-9 >= run.total_cost ? "yes" : "NO");
  std::printf("  certified OPT bound  : %.2f  (Lemma 5: D/2 <= OPT)\n",
              witness.lower_bound(eps));
  std::printf("  theorem-1 guarantee  : ALG <= %.1f x OPT(1/(2+eps)-speed)\n",
              2.0 * (2.0 / eps + 1.0));
  return 0;
}
