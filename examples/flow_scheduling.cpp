// Flow-level API scenario: submit elephant and mouse FLOWS (multi-unit,
// via the Section-II reduction), schedule with ALG through the
// ScenarioRunner, and inspect per-flow completion times plus the
// schedule's Gantt chart.
//
//   $ ./examples/flow_scheduling

#include <cstdio>

#include "flow/flows.hpp"
#include "run/scenario.hpp"
#include "sim/gantt.hpp"
#include "util/table.hpp"

namespace {

using namespace rdcn;

FlowSet make_flows() {
  // A small pod: 3 racks, one laser + photodetector each, full mesh.
  Rng rng(7);
  TwoTierConfig net;
  net.racks = 3;
  net.lasers_per_rack = 1;
  net.photodetectors_per_rack = 1;
  net.density = 1.0;
  const Topology topology = build_two_tier(net, rng);

  FlowSet flows(topology);
  // A mouse, an elephant (weight 12 split over 6 units), and two more
  // mice contending with the elephant's tail.
  flows.add_flow(/*arrival=*/1, /*weight=*/1.0, /*size=*/1, /*src=*/0, /*dst=*/1);
  flows.add_flow(/*arrival=*/1, /*weight=*/12.0, /*size=*/6, /*src=*/0, /*dst=*/2);
  flows.add_flow(/*arrival=*/3, /*weight=*/1.0, /*size=*/1, /*src=*/1, /*dst=*/2);
  flows.add_flow(/*arrival=*/4, /*weight=*/2.0, /*size=*/2, /*src=*/2, /*dst=*/1);
  return flows;
}

}  // namespace

int main() {
  using namespace rdcn;

  const FlowSet flows = make_flows();
  ScenarioSpec spec;
  spec.name = "flow-scheduling";
  spec.make_instance = [](std::uint64_t) { return make_flows().to_instance(); };
  const ScenarioRunner runner(spec);

  const Instance instance = flows.to_instance();
  const RunResult run = runner.run_once(alg_policy(), 1);
  const FlowReport report = analyze_flows(flows, run);

  Table table({"flow", "route", "size", "weight", "completion", "FCT", "weighted FCT"});
  for (std::size_t f = 0; f < flows.flows().size(); ++f) {
    const Flow& flow = flows.flows()[f];
    const FlowOutcome& outcome = report.flows[f];
    table.add_row({"f" + std::to_string(f),
                   std::to_string(flow.source) + "->" + std::to_string(flow.destination),
                   Table::fmt(flow.size), Table::fmt(flow.weight, 1),
                   Table::fmt(static_cast<std::int64_t>(outcome.completion)),
                   Table::fmt(outcome.fct, 0), Table::fmt(outcome.weighted_fct, 1)});
  }
  table.print("flow-level schedule (ALG)");

  std::printf("\ntotal weighted FCT      : %.1f\n", report.total_weighted_fct);
  std::printf("total fractional cost   : %.1f (the paper's objective)\n",
              report.total_fractional_cost);
  std::printf("mean / p99 FCT          : %.2f / %.1f\n\n", report.mean_fct, report.p99_fct);

  std::printf("%s", render_gantt(instance, run, {.show_receivers = true}).c_str());
  std::printf(
      "\nNote how the elephant's 6 unit packets (glyphs 1-6) pipeline through the\n"
      "0->2 link while mice slot into the remaining matchings -- the weight order\n"
      "keeps the heavy flow moving without starving light ones.\n");
  return 0;
}
