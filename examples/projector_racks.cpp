// ProjecToR-style scenario (the architecture that motivates the paper,
// [11]): 16 racks, each with a handful of lasers/photodetectors, serving
// skewed rack-to-rack traffic with elephant and mouse flows. Compares the
// paper's ALG against classic switch-scheduling baselines on the same
// workload, all through the shared scenario layer.
//
//   $ ./examples/projector_racks [num_packets] [zipf_exponent]

#include <cstdio>
#include <cstdlib>

#include "run/scenario.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;

  const std::size_t num_packets = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const double zipf = argc > 2 ? std::strtod(argv[2], nullptr) : 1.2;

  // A free-space-optics pod: every laser can hit every remote photodetector.
  ScenarioSpec spec;
  spec.name = "projector-pod";
  auto& net = spec.topology.two_tier;
  net.racks = 16;
  net.lasers_per_rack = 3;
  net.photodetectors_per_rack = 3;
  net.density = 0.35;  // line-of-sight blockage prunes combinations
  net.max_edge_delay = 2;
  spec.topology.fixed_wiring = true;  // one pod, every policy on the same wiring
  spec.topology.seed_salt = 2021;
  spec.workload.num_packets = num_packets;
  spec.workload.arrival_rate = 6.0;
  spec.workload.skew = PairSkew::Zipf;
  spec.workload.zipf_exponent = zipf;
  spec.workload.weights = WeightDist::Bimodal;  // elephants vs mice
  spec.workload.weight_max = 20;
  spec.workload.elephant_fraction = 0.1;
  spec.workload.bursty = true;
  spec.base_seed = 7;
  const ScenarioRunner runner(spec);

  const Instance instance = runner.instance(7);
  const Topology& topology = instance.topology();
  std::printf("ProjecToR pod: %d racks, %d lasers, %d photodetectors, %d opportunistic links\n",
              topology.num_sources(), topology.num_transmitters(), topology.num_receivers(),
              topology.num_edges());
  std::printf("workload: %zu packets, zipf %.2f, 10%% elephants (w=20)\n\n",
              instance.num_packets(), zipf);

  struct Row {
    const char* name;
    const char* policy;
  };
  const Row rows[] = {
      {"ALG (impact + stable matching)", "alg"},
      {"MaxWeight matching", "maxweight"},
      {"iSLIP", "islip"},
      {"Rotor (demand-oblivious)", "rotor"},
      {"FIFO greedy", "fifo"},
  };

  Table table({"policy", "weighted latency", "vs ALG", "makespan", "mean latency"});
  double alg_cost = 0.0;
  for (const Row& row : rows) {
    const RunResult run = runner.run_once(named_policy(row.policy), instance);
    const ScheduleSummary summary = summarize(instance, run);
    if (alg_cost == 0.0) alg_cost = summary.total_cost;
    table.add_row({row.name, Table::fmt(summary.total_cost, 1),
                   Table::fmt(summary.total_cost / alg_cost, 2) + "x",
                   Table::fmt(static_cast<std::int64_t>(summary.makespan)),
                   Table::fmt(summary.mean_weighted_latency, 2)});
  }
  table.print("skewed elephant/mice traffic: ALG vs switch-scheduling baselines");
  std::printf("\n(lower is better; 'vs ALG' is the cost ratio to the paper's algorithm)\n");
  return 0;
}
