// ProjecToR-style scenario (the architecture that motivates the paper,
// [11]): 16 racks, each with a handful of lasers/photodetectors, serving
// skewed rack-to-rack traffic with elephant and mouse flows. Compares the
// paper's ALG against classic switch-scheduling baselines on the same
// workload.
//
//   $ ./examples/projector_racks [num_packets] [zipf_exponent]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baseline/dispatchers.hpp"
#include "baseline/schedulers.hpp"
#include "core/alg.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;

  const std::size_t num_packets = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const double zipf = argc > 2 ? std::strtod(argv[2], nullptr) : 1.2;

  // A free-space-optics pod: every laser can hit every remote photodetector.
  Rng rng(2021);
  TwoTierConfig net;
  net.racks = 16;
  net.lasers_per_rack = 3;
  net.photodetectors_per_rack = 3;
  net.density = 0.35;  // line-of-sight blockage prunes combinations
  net.max_edge_delay = 2;
  const Topology topology = build_two_tier(net, rng);

  WorkloadConfig traffic;
  traffic.num_packets = num_packets;
  traffic.arrival_rate = 6.0;
  traffic.skew = PairSkew::Zipf;
  traffic.zipf_exponent = zipf;
  traffic.weights = WeightDist::Bimodal;  // elephants vs mice
  traffic.weight_max = 20;
  traffic.elephant_fraction = 0.1;
  traffic.bursty = true;
  traffic.seed = 7;
  const Instance instance = generate_workload(topology, traffic);

  std::printf("ProjecToR pod: %d racks, %d lasers, %d photodetectors, %d opportunistic links\n",
              topology.num_sources(), topology.num_transmitters(), topology.num_receivers(),
              topology.num_edges());
  std::printf("workload: %zu packets, zipf %.2f, 10%% elephants (w=20)\n\n",
              instance.num_packets(), zipf);

  struct Row {
    const char* name;
    std::unique_ptr<DispatchPolicy> dispatcher;
    std::unique_ptr<SchedulePolicy> scheduler;
  };
  std::vector<Row> rows;
  rows.push_back({"ALG (impact + stable matching)", std::make_unique<ImpactDispatcher>(),
                  std::make_unique<StableMatchingScheduler>()});
  rows.push_back({"MaxWeight matching", std::make_unique<JsqDispatcher>(),
                  std::make_unique<MaxWeightScheduler>()});
  rows.push_back({"iSLIP", std::make_unique<JsqDispatcher>(),
                  std::make_unique<IslipScheduler>()});
  rows.push_back({"Rotor (demand-oblivious)", std::make_unique<JsqDispatcher>(),
                  std::make_unique<RotorScheduler>(topology)});
  rows.push_back({"FIFO greedy", std::make_unique<JsqDispatcher>(),
                  std::make_unique<FifoScheduler>()});

  Table table({"policy", "weighted latency", "vs ALG", "makespan", "mean latency"});
  double alg_cost = 0.0;
  for (auto& row : rows) {
    const RunResult run = simulate(instance, *row.dispatcher, *row.scheduler, {});
    const ScheduleSummary summary = summarize(instance, run);
    if (alg_cost == 0.0) alg_cost = summary.total_cost;
    table.add_row({row.name, Table::fmt(summary.total_cost, 1),
                   Table::fmt(summary.total_cost / alg_cost, 2) + "x",
                   Table::fmt(static_cast<std::int64_t>(summary.makespan)),
                   Table::fmt(summary.mean_weighted_latency, 2)});
  }
  table.print("skewed elephant/mice traffic: ALG vs switch-scheduling baselines");
  std::printf("\n(lower is better; 'vs ALG' is the cost ratio to the paper's algorithm)\n");
  return 0;
}
