// Hybrid topology scenario (Section II's fixed layer E_l): a pod where
// every rack pair also has a slow electrical path. Shows how the paper's
// dispatcher shifts traffic to the fixed network as the reconfigurable
// layer saturates -- the "opportunistic links for the most significant
// transmissions" behaviour the introduction motivates.
//
//   $ ./examples/hybrid_datacenter

#include <cstdio>

#include "run/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace rdcn;

  Table table({"arrival rate", "packets via optics", "packets via fixed", "optic share",
               "weighted latency"});

  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    ScenarioSpec spec;
    spec.name = "hybrid-rate" + Table::fmt(rate, 0);
    auto& net = spec.topology.two_tier;
    net.racks = 8;
    net.lasers_per_rack = 1;  // scarce opportunistic links
    net.photodetectors_per_rack = 1;
    net.density = 1.0;
    net.fixed_link_delay = 6;  // slow electrical fallback everywhere
    spec.topology.fixed_wiring = true;  // one pod wiring for the whole sweep
    spec.topology.seed_salt = 11;
    spec.workload.num_packets = 300;
    spec.workload.arrival_rate = rate;
    spec.workload.skew = PairSkew::Hotspot;  // congest a few optical links
    spec.workload.hotspot_fraction = 0.4;
    spec.workload.weights = WeightDist::UniformInt;
    spec.workload.weight_max = 8;
    spec.base_seed = 23;
    const ScenarioRunner runner(spec);

    const Instance instance = runner.instance(23);
    const RunResult run = runner.run_once(alg_policy(), instance);
    std::size_t via_fixed = 0;
    for (const PacketOutcome& outcome : run.outcomes) {
      via_fixed += outcome.route.use_fixed ? 1 : 0;
    }
    const std::size_t via_optics = instance.num_packets() - via_fixed;
    table.add_row({Table::fmt(rate, 1), Table::fmt(static_cast<std::uint64_t>(via_optics)),
                   Table::fmt(static_cast<std::uint64_t>(via_fixed)),
                   Table::fmt(100.0 * static_cast<double>(via_optics) /
                                  static_cast<double>(instance.num_packets()),
                              1) +
                       "%",
                   Table::fmt(run.total_cost, 1)});
  }

  table.print("hybrid pod: impact dispatcher offloads to the fixed layer under load");
  std::printf(
      "\nAs load grows, queues on the scarce optical links raise Delta_p(e), and the\n"
      "dispatcher sends an increasing share of packets over the slow fixed links --\n"
      "reserving the opportunistic links for the heaviest transmissions.\n");
  return 0;
}
