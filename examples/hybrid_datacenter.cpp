// Hybrid topology scenario (Section II's fixed layer E_l): a pod where
// every rack pair also has a slow electrical path. Shows how the paper's
// dispatcher shifts traffic to the fixed network as the reconfigurable
// layer saturates -- the "opportunistic links for the most significant
// transmissions" behaviour the introduction motivates.
//
//   $ ./examples/hybrid_datacenter

#include <cstdio>

#include "core/alg.hpp"
#include "net/builders.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace rdcn;

  Table table({"arrival rate", "packets via optics", "packets via fixed", "optic share",
               "weighted latency"});

  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    Rng rng(11);
    TwoTierConfig net;
    net.racks = 8;
    net.lasers_per_rack = 1;  // scarce opportunistic links
    net.photodetectors_per_rack = 1;
    net.density = 1.0;
    net.fixed_link_delay = 6;  // slow electrical fallback everywhere
    const Topology topology = build_two_tier(net, rng);

    WorkloadConfig traffic;
    traffic.num_packets = 300;
    traffic.arrival_rate = rate;
    traffic.skew = PairSkew::Hotspot;  // congest a few optical links
    traffic.hotspot_fraction = 0.4;
    traffic.weights = WeightDist::UniformInt;
    traffic.weight_max = 8;
    traffic.seed = 23;
    const Instance instance = generate_workload(topology, traffic);

    const RunResult run = run_alg(instance);
    std::size_t via_fixed = 0;
    for (const PacketOutcome& outcome : run.outcomes) {
      via_fixed += outcome.route.use_fixed ? 1 : 0;
    }
    const std::size_t via_optics = instance.num_packets() - via_fixed;
    table.add_row({Table::fmt(rate, 1), Table::fmt(static_cast<std::uint64_t>(via_optics)),
                   Table::fmt(static_cast<std::uint64_t>(via_fixed)),
                   Table::fmt(100.0 * static_cast<double>(via_optics) /
                                  static_cast<double>(instance.num_packets()),
                              1) +
                       "%",
                   Table::fmt(run.total_cost, 1)});
  }

  table.print("hybrid pod: impact dispatcher offloads to the fixed layer under load");
  std::printf(
      "\nAs load grows, queues on the scarce optical links raise Delta_p(e), and the\n"
      "dispatcher sends an increasing share of packets over the slow fixed links --\n"
      "reserving the opportunistic links for the heaviest transmissions.\n");
  return 0;
}
