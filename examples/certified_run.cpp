// Certified scheduling: runs ALG on a random instance and then verifies,
// at runtime, every guarantee the paper proves about the run --
//   Lemma 1 (beta ledgers), Lemma 2 (charges within alpha),
//   Lemma 4/5 (halved witness dual-feasible), Lemma 3 / Theorem 1.
// This is the library's "self-auditing" mode: the same machinery the
// test-suite uses, exposed as an application.
//
//   $ ./examples/certified_run [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/charging.hpp"
#include "core/dual_witness.hpp"
#include "run/scenario.hpp"
#include "sim/metrics.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  ScenarioSpec spec;
  spec.name = "certified-run";
  auto& net = spec.topology.two_tier;
  net.racks = 6;
  net.lasers_per_rack = 2;
  net.photodetectors_per_rack = 2;
  net.density = 0.7;
  net.max_edge_delay = 3;
  net.fixed_link_delay = 10;
  spec.workload.num_packets = 60;
  spec.workload.arrival_rate = 4.0;
  spec.workload.skew = PairSkew::Zipf;
  spec.workload.weights = WeightDist::UniformInt;
  spec.workload.weight_max = 9;
  spec.engine.record_trace = true;  // the audits below need the step trace
  spec.base_seed = seed;
  const ScenarioRunner runner(spec);

  const Instance instance = runner.instance(seed);
  const Topology& topology = instance.topology();
  std::printf("instance: %zu packets on %d racks (%d edges, hybrid)\n",
              instance.num_packets(), topology.num_sources(), topology.num_edges());

  const RunResult run = runner.run_once(alg_policy(), instance);
  std::printf("ALG cost: %.3f (reconfig %.3f + fixed %.3f), makespan %lld\n\n",
              run.total_cost, run.reconfig_cost, run.fixed_cost,
              static_cast<long long>(run.makespan));

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    failures += ok ? 0 : 1;
  };

  std::printf("delivery & accounting:\n");
  check(all_delivered(instance, run), "every packet delivered");
  check(std::abs(run.total_cost - recompute_cost(instance, run)) < 1e-6,
        "incremental == per-chunk recomputed cost");
  check(std::abs(run.total_cost - recompute_cost_active_form(instance, run)) < 1e-6,
        "incremental == continuous-form cost");

  std::printf("Lemma 1 (beta ledger):\n");
  const DualWitness witness = build_dual_witness(instance, run);
  check(lemma1_gap(witness, run) < 1e-6,
        "sum_t beta == sum_r beta == reconfigurable cost");

  std::printf("Lemma 2 (charging scheme):\n");
  const ChargingAudit audit = audit_charging(instance, run);
  check(audit.max_overcharge <= 1e-7, "every packet's charge <= alpha_p");
  check(audit.cover_gap < 1e-6, "charges partition ALG's cost");
  if (instance.has_integer_weights()) {
    const ExactChargingAudit exact = audit_charging_exact(instance, run);
    check(exact.charges_cover_cost, "exact rational: charges cover cost");
    check(exact.within_alpha, "exact rational: charge <= alpha");
  }

  std::printf("Lemma 4/5 (dual feasibility):\n");
  const DualFeasibilityReport feasibility = check_dual_feasibility(instance, witness);
  check(feasibility.halved_feasible, "halved witness satisfies all dual constraints");
  std::printf("        max violation ratio %.4f (< 2 by Lemma 4), %zu constraints\n",
              feasibility.max_violation_ratio, feasibility.constraints_checked);

  std::printf("Lemma 3 / Theorem 1:\n");
  for (const double eps : {0.5, 1.0, 2.0}) {
    const double dual_value = witness.objective(eps);
    const bool lemma3 = run.total_cost * eps / (2.0 + eps) <= dual_value + 1e-6;
    std::printf("  [%s] eps=%.1f: ALG (%.2f) <= (2+eps)/eps * D (%.2f); certified OPT >= %.2f\n",
                lemma3 ? "PASS" : "FAIL", eps, run.total_cost,
                (2.0 + eps) / eps * dual_value, witness.lower_bound(eps));
    failures += lemma3 ? 0 : 1;
  }

  std::printf("\n%s\n", failures == 0 ? "all certificates verified" : "CERTIFICATE FAILURES");
  return failures == 0 ? 0 : 1;
}
